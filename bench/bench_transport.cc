// Transport overhead harness (DESIGN.md §7): what the wire format and TCP
// loopback cost relative to direct in-process calls, per inference request.
//
// Three deployments of the same synchronous protocol on the same model:
//   direct       concrete providers, zero-copy in-process calls (seed path)
//   framed       InProcessFrameChannel: full encode -> dispatch -> decode,
//                no sockets — isolates serialization + framing cost
//   tcp          TcpTransport against a ModelProviderTcpServer over
//                127.0.0.1 — adds real socket hops
//
// Reported per deployment: mean per-request latency, overhead vs direct,
// and (for the framed/tcp rows) wire bytes per request in each direction.
// Results are recorded in EXPERIMENTS.md ("Transport overhead").

#include "bench/bench_common.h"
#include "net/server.h"
#include "net/transport.h"

#include <thread>

using namespace ppstream;
using namespace ppstream::bench;

namespace {

constexpr int kKeyBits = 256;  // sandbox scale; see EXPERIMENTS.md
constexpr int kRequests = 4;

struct RunResult {
  double seconds_per_request = 0;
  uint64_t bytes_sent_per_request = 0;
  uint64_t bytes_received_per_request = 0;
  uint64_t frames_per_request = 0;
};

RunResult RunRequests(ModelProviderApi& mp, DataProviderApi& dp,
                      const std::vector<DoubleTensor>& inputs,
                      FrameChannel* channel) {
  const TransportStats before =
      channel ? channel->stats() : TransportStats{};
  WallTimer timer;
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto out = RunProtocolInference(mp, dp, i + 1, inputs[i]);
    PPS_CHECK_OK(out.status());
  }
  RunResult result;
  result.seconds_per_request = timer.ElapsedSeconds() / inputs.size();
  if (channel) {
    const TransportStats after = channel->stats();
    result.bytes_sent_per_request =
        (after.bytes_sent - before.bytes_sent) / inputs.size();
    result.bytes_received_per_request =
        (after.bytes_received - before.bytes_received) / inputs.size();
    result.frames_per_request =
        (after.frames_sent - before.frames_sent) / inputs.size();
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== Transport overhead: direct vs framed vs TCP loopback ==\n");
  std::printf("(MNIST-2, F=10000, %d-bit keys, %d requests per row)\n\n",
              kKeyBits, kRequests);

  TrainedEntry entry = Train(ZooModelId::kMnist2);
  ProtocolSetup setup = Setup(entry.model, 10000, kKeyBits);
  const PaillierKeyPair& keys = SharedKeys(kKeyBits);

  std::vector<DoubleTensor> inputs(entry.data.test.samples.begin(),
                                   entry.data.test.samples.begin() +
                                       kRequests);

  // ---- direct: the seed's zero-copy path.
  InProcessTransport direct(setup.mp);
  DataProvider direct_dp(direct.view_plan(), keys, /*enc_seed=*/20);
  const RunResult direct_run =
      RunRequests(*direct.model_provider(), direct_dp, inputs, nullptr);

  // ---- framed: full wire path in memory.
  auto framed_mp_impl = setup.mp;
  auto framed_channel = std::make_shared<InProcessFrameChannel>(
      [framed_mp_impl](const WireFrame& request) {
        return DispatchModelProviderFrame(*framed_mp_impl, request);
      });
  RemoteModelProvider framed_mp(framed_channel, direct.view_plan());
  DataProvider framed_dp(direct.view_plan(), keys, /*enc_seed=*/20);
  const RunResult framed_run =
      RunRequests(framed_mp, framed_dp, inputs, framed_channel.get());

  // ---- tcp: real loopback sockets against the server class.
  ModelProviderServerOptions server_options;
  server_options.worker_threads = 2;
  ModelProviderTcpServer server(setup.plan, server_options);
  PPS_CHECK_OK(server.Listen(0));
  std::thread server_thread(
      [&server] { PPS_CHECK_OK(server.ServeOne(30.0)); });
  auto transport =
      TcpTransport::Connect("127.0.0.1", server.port(), keys.public_key);
  PPS_CHECK_OK(transport.status());
  DataProvider tcp_dp(transport.value()->view_plan(), keys, /*enc_seed=*/20);
  const RunResult tcp_run =
      RunRequests(*transport.value()->model_provider(), tcp_dp, inputs,
                  &transport.value()->channel());
  transport.value()->Close();
  server_thread.join();

  PrintRule();
  std::printf("%-8s %14s %12s %10s %12s %12s\n", "path", "ms/request",
              "overhead", "frames", "B sent", "B recv");
  PrintRule();
  auto row = [&](const char* name, const RunResult& r) {
    std::printf("%-8s %14.1f %11.1f%% %10llu %12llu %12llu\n", name,
                1e3 * r.seconds_per_request,
                100.0 * (r.seconds_per_request /
                             direct_run.seconds_per_request -
                         1.0),
                static_cast<unsigned long long>(r.frames_per_request),
                static_cast<unsigned long long>(r.bytes_sent_per_request),
                static_cast<unsigned long long>(r.bytes_received_per_request));
  };
  row("direct", direct_run);
  row("framed", framed_run);
  row("tcp", tcp_run);
  PrintRule();
  std::printf("\nbytes are client->server (sent) and server->client (recv), "
              "headers included;\nthe direct path serializes nothing.\n");
  return 0;
}
