// Chaos recovery bench for the TCP serving path (DESIGN.md §11).
//
// Measures what resilience costs, against a real loopback server:
//
//   clean           no faults — per-inference latency and frames baseline;
//   socket_resets   net.sock.reset tears the connection down under every
//                   third frame: each reset forces a redial + session
//                   resume mid-inference. Reports recovery latency (the
//                   net.reconnect_seconds histogram) and retry-storm
//                   amplification — frames per inference relative to the
//                   clean baseline (a well-behaved client re-sends only
//                   what the reply cache cannot answer);
//   server_restart  the server is drained away and replaced on the same
//                   port mid-phase: the session dies with it, the client
//                   gets kNotFound and restarts the inference from scratch
//                   on a fresh session.
//
// Every phase asserts bit-exactness against RunScaledPlainInference —
// a recovery that changes the answer is a bug, not a data point.
//
// Output: bench/BENCH_chaos.json (per-phase latency/amplification +
// counter totals) and an optional Prometheus exposition of the same
// registry (--prom), self-linted, which carries the resilience families
// (net.session.*, net.reconnects, fault.injected.net.sock.*) that the
// pipeline bench never exercises — run_benchmarks.sh lints both.
//
//   bench_chaos_tcp [--smoke] [--out bench/BENCH_chaos.json] [--prom FILE]

#include <algorithm>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/server.h"
#include "net/transport.h"
#include "nn/layers.h"
#include "obs/metrics.h"
#include "util/fault.h"

using namespace ppstream;
using namespace ppstream::bench;

namespace {

double Ms(double seconds) { return seconds * 1e3; }

std::shared_ptr<const InferencePlan> TinyPlan() {
  Rng mrng(8);
  Model model(Shape{4}, "chaos-bench");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 6, mrng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 3, mrng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  auto plan = CompilePlan(model, 1000);
  PPS_CHECK_OK(plan.status());
  return std::make_shared<const InferencePlan>(std::move(plan).value());
}

DoubleTensor MakeInput(uint64_t seed) {
  Rng rng(seed);
  DoubleTensor x{Shape{4}};
  for (int64_t j = 0; j < 4; ++j) x[j] = rng.NextUniform(-2, 2);
  return x;
}

struct PhaseReport {
  std::string name;
  size_t inferences = 0;
  double mean_ms = 0;
  double p95_ms = 0;
  double frames_per_inference = 0;
  /// Physical wire attempts per inference (net.exchange.attempts counts
  /// resends inside the resilient channel that logical frame counters
  /// never see).
  double attempts_per_inference = 0;
  /// attempts_per_inference / the clean phase's — 1.0 means zero resend
  /// overhead, 2.0 means the chaos doubled the wire traffic for the same
  /// work.
  double amplification = 0;
  uint64_t reconnects = 0;
  uint64_t restarts = 0;
};

/// Runs `count` resilient inferences, asserting bit-exactness, and
/// returns the phase's latency/traffic profile. `mutate` (optional) runs
/// between inferences — the server_restart phase swaps processes there.
PhaseReport RunPhase(const std::string& name, ModelProviderApi& mp,
                     DataProvider& dp, ResilientTcpChannel& channel,
                     const InferencePlan& plan, size_t count,
                     uint64_t request_base,
                     const std::function<void(size_t)>& mutate = nullptr) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter* frames_sent = registry.GetCounter("net.frames_sent");
  obs::Counter* attempts = registry.GetCounter("net.exchange.attempts");
  obs::Counter* restarts = registry.GetCounter("net.inference.restarts");
  const uint64_t frames_before = frames_sent->Value();
  const uint64_t attempts_before = attempts->Value();
  const uint64_t reconnects_before = channel.reconnects();
  const uint64_t restarts_before = restarts->Value();

  ResilientInferenceOptions ropts;
  ropts.restart = {.max_retries = 5,
                   .initial_backoff_seconds = 0.02,
                   .max_backoff_seconds = 0.2};
  ropts.deadline_seconds = 60.0;

  std::vector<double> latencies;
  for (size_t i = 0; i < count; ++i) {
    if (mutate) mutate(i);
    const DoubleTensor input = MakeInput(0xBE7C4 + request_base + i);
    auto expected = RunScaledPlainInference(plan, input);
    PPS_CHECK_OK(expected.status());
    WallTimer timer;
    auto output =
        RunResilientInference(mp, dp, request_base + i + 1, input, ropts);
    latencies.push_back(timer.ElapsedSeconds());
    PPS_CHECK(output.ok()) << name << ": " << output.status().ToString();
    for (int64_t j = 0; j < expected->NumElements(); ++j) {
      PPS_CHECK(output.value()[j] == expected.value()[j])
          << name << ": inference diverged from the plain reference";
    }
  }

  std::sort(latencies.begin(), latencies.end());
  double sum = 0;
  for (double l : latencies) sum += l;
  PhaseReport report;
  report.name = name;
  report.inferences = count;
  report.mean_ms = Ms(sum / static_cast<double>(count));
  report.p95_ms = Ms(latencies[(latencies.size() * 95) / 100]);
  report.frames_per_inference =
      static_cast<double>(frames_sent->Value() - frames_before) /
      static_cast<double>(count);
  report.attempts_per_inference =
      static_cast<double>(attempts->Value() - attempts_before) /
      static_cast<double>(count);
  report.reconnects = channel.reconnects() - reconnects_before;
  report.restarts = restarts->Value() - restarts_before;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "bench/BENCH_chaos.json";
  const char* prom_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--prom") == 0 && i + 1 < argc) {
      prom_path = argv[++i];
    }
  }
  const size_t per_phase = smoke ? 3 : 8;
  const int key_bits = 256;  // chaos cost is dominated by backoff, not crypto

  std::printf("== chaos recovery over TCP (%zu inferences/phase, %d-bit "
              "keys%s) ==\n\n",
              per_phase, key_bits, smoke ? ", smoke" : "");

  auto plan = TinyPlan();
  const PaillierKeyPair& keys = SharedKeys(key_bits);
  PPS_CHECK_OK(plan->CheckFitsKey(keys.public_key.n()));

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.Reset();

  auto server = std::make_unique<ModelProviderTcpServer>(plan);
  PPS_CHECK_OK(server->Listen(0));
  const uint16_t port = server->port();
  std::thread server_thread([&server] { PPS_CHECK_OK(server->Serve()); });

  auto transport =
      TcpTransport::Connect("127.0.0.1", port, keys.public_key);
  PPS_CHECK_OK(transport.status());
  auto* channel =
      dynamic_cast<ResilientTcpChannel*>(&transport.value()->channel());
  PPS_CHECK(channel != nullptr);

  DataProvider dp(transport.value()->view_plan(), keys, 0xBE9C);
  ModelProviderApi& mp = *transport.value()->model_provider();

  std::vector<PhaseReport> phases;

  // ---- Phase 1: clean baseline.
  phases.push_back(RunPhase("clean", mp, dp, *channel, *plan, per_phase,
                            /*request_base=*/100));

  // ---- Phase 2: connection resets under every third frame.
  auto injector = std::make_shared<FaultInjector>(0xC4A05);
  {
    FaultRule reset;
    reset.site_pattern = "net.sock.reset";
    reset.kind = FaultKind::kError;
    reset.error_code = StatusCode::kIoError;
    reset.every_nth = 3;
    injector->AddRule(reset);
  }
  transport.value()->channel().SetFaultInjector(injector);
  phases.push_back(RunPhase("socket_resets", mp, dp, *channel, *plan,
                            per_phase, /*request_base=*/200));
  transport.value()->channel().SetFaultInjector(nullptr);
  PPS_CHECK(injector->stats().errors > 0) << "no resets fired";
  PPS_CHECK(phases.back().reconnects > 0) << "resets never reconnected";

  // ---- Phase 3: the server is replaced mid-phase (session dies with it).
  auto swap_server = [&](size_t i) {
    if (i != per_phase / 2) return;
    server->BeginDrain(0);
    server_thread.join();
    server = std::make_unique<ModelProviderTcpServer>(plan);
    PPS_CHECK_OK(server->Listen(port));
    server_thread = std::thread([&server] { PPS_CHECK_OK(server->Serve()); });
  };
  phases.push_back(RunPhase("server_restart", mp, dp, *channel, *plan,
                            per_phase, /*request_base=*/300, swap_server));
  PPS_CHECK(phases.back().restarts > 0)
      << "the replacement server never forced an inference restart";

  transport.value()->Close();
  server->Shutdown();
  server_thread.join();

  const double clean_api = phases[0].attempts_per_inference;
  for (PhaseReport& phase : phases) {
    phase.amplification = phase.attempts_per_inference / clean_api;
  }

  // ---- Console + JSON.
  std::printf("%-16s %6s %10s %10s %11s %12s %6s %10s %9s\n", "phase",
              "count", "mean(ms)", "p95(ms)", "frames/inf", "attempts/inf",
              "amp", "reconnects", "restarts");
  PrintRule();
  for (const PhaseReport& p : phases) {
    std::printf("%-16s %6zu %10.2f %10.2f %11.2f %12.2f %6.2f %10llu "
                "%9llu\n",
                p.name.c_str(), p.inferences, p.mean_ms, p.p95_ms,
                p.frames_per_inference, p.attempts_per_inference,
                p.amplification, static_cast<unsigned long long>(p.reconnects),
                static_cast<unsigned long long>(p.restarts));
  }

  const obs::Histogram* reconnect_seconds =
      registry.GetHistogram("net.reconnect_seconds");
  std::printf("\nreconnect latency: count %llu p50 %.2f ms p95 %.2f ms "
              "max %.2f ms\n",
              static_cast<unsigned long long>(reconnect_seconds->Count()),
              Ms(reconnect_seconds->Quantile(0.5)),
              Ms(reconnect_seconds->Quantile(0.95)),
              Ms(reconnect_seconds->Max()));

  std::ofstream json(out_path);
  PPS_CHECK(json.good()) << "cannot write " << out_path;
  json << "{\n  \"key_bits\": " << key_bits << ",\n  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseReport& p = phases[i];
    json << "    {\"name\": \"" << p.name << "\""
         << ", \"inferences\": " << p.inferences
         << ", \"mean_ms\": " << p.mean_ms << ", \"p95_ms\": " << p.p95_ms
         << ", \"frames_per_inference\": " << p.frames_per_inference
         << ", \"attempts_per_inference\": " << p.attempts_per_inference
         << ", \"amplification_vs_clean\": " << p.amplification
         << ", \"reconnects\": " << p.reconnects
         << ", \"inference_restarts\": " << p.restarts << "}"
         << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"reconnect_seconds\": {"
       << "\"count\": " << reconnect_seconds->Count()
       << ", \"p50_ms\": " << Ms(reconnect_seconds->Quantile(0.5))
       << ", \"p95_ms\": " << Ms(reconnect_seconds->Quantile(0.95))
       << ", \"max_ms\": " << Ms(reconnect_seconds->Max()) << "},\n";
  json << "  \"counters\": {\n";
  bool first = true;
  for (const char* prefix : {"net.", "fault."}) {
    for (const auto& [name, value] : registry.CounterValues(prefix)) {
      if (!first) json << ",\n";
      first = false;
      json << "    \"" << name << "\": " << value;
    }
  }
  json << "\n  }\n}\n";
  json.close();
  std::printf("wrote %s\n", out_path);

  if (prom_path != nullptr) {
    // The chaos registry is the only place the resilience families all
    // exist at once; the exposition is linted here and again (with
    // required-family expectations) by run_benchmarks.sh.
    auto prom_or = obs::CheckedPrometheusText(registry);
    PPS_CHECK_OK(prom_or.status());
    const std::string& prom = prom_or.value();
    for (const char* family :
         {"pps_net_reconnects", "pps_net_session_created",
          "pps_net_session_lost", "pps_net_inference_restarts",
          "pps_fault_injected_error_net_sock_reset"}) {
      PPS_CHECK(prom.find(family) != std::string::npos)
          << "resilience family missing from the exposition: " << family;
    }
    std::ofstream prom_out(prom_path);
    PPS_CHECK(prom_out.good()) << "cannot write " << prom_path;
    prom_out << prom;
    prom_out.close();
    std::printf("wrote %s (lint OK)\n", prom_path);
  }
  std::printf("\nbench_chaos_tcp OK\n");
  return 0;
}
