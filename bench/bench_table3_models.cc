// Table III — dataset & model inventory.
//
// Prints the nine zoo entries with the paper's sample counts and server
// split alongside this repo's scaled dataset sizes, model parameter
// counts, and compiled-plan shapes (rounds / stages).

#include "bench/bench_common.h"

using namespace ppstream;
using namespace ppstream::bench;

int main() {
  std::printf("== Table III: datasets and models ==\n\n");
  std::printf("%-12s %-10s %13s %13s %9s %8s %7s %7s\n", "Dataset", "Model",
              "paper train", "paper test", "servers", "params", "layers",
              "rounds");
  PrintRule();

  for (const ZooInfo& info : AllZooInfos()) {
    auto model = MakeZooModel(info.id, 7);
    PPS_CHECK_OK(model.status());
    auto plan = CompilePlan(model.value(), 1000);
    PPS_CHECK_OK(plan.status());
    std::printf("%-12s %-10s %13zu %13zu %5d/%-3d %8lld %7zu %7zu\n",
                info.dataset_name, info.architecture,
                info.paper_train_samples, info.paper_test_samples,
                info.paper_model_servers, info.paper_data_servers,
                static_cast<long long>(model.value().ParameterCount()),
                model.value().NumLayers(), plan.value().NumRounds());
  }

  std::printf("\nsandbox dataset scales (documented substitution, DESIGN.md "
              "S2):\n");
  for (const ZooInfo& info : AllZooInfos()) {
    const double scale = DatasetScale(info.id);
    std::printf("  %-12s scale %.3f -> %5zu train / %5zu test synthetic "
                "samples\n",
                info.dataset_name, scale,
                std::max<size_t>(120,
                                 static_cast<size_t>(
                                     info.paper_train_samples * scale)),
                std::max<size_t>(60, static_cast<size_t>(
                                         info.paper_test_samples * scale)));
  }
  return 0;
}
