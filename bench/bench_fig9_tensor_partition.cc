// Figure 9 (Exp#4) — tensor partitioning.
//
// Per model, sweep total cores and compare latency with and without input
// tensor partitioning. Without partitioning, every thread of a linear
// stage receives the entire input tensor (the paper's baseline); with it,
// each thread receives only the union of its output rows' receptive
// fields (§IV-D). The shipped ciphertext volume is computed exactly from
// the partition plans and charged to the 10 GbE model inside the
// simulator. Expected shape: gains grow with core count and are largest
// for convolution models (MNIST-2/3); FC-only models see little change.

#include "bench/bench_common.h"

#include "core/partition.h"

using namespace ppstream;
using namespace ppstream::bench;

int main() {
  std::printf("== Figure 9 (Exp#4): tensor partitioning ==\n\n");
  constexpr int kKeyBits = 512;
  const std::vector<int> core_counts = {10, 20, 30, 40, 50};
  SimNetwork network;

  double best_reduction = 0;
  const char* best_model = "";

  for (ZooModelId id :
       {ZooModelId::kBreast, ZooModelId::kHeart, ZooModelId::kCardio,
        ZooModelId::kMnist1, ZooModelId::kMnist2, ZooModelId::kMnist3}) {
    TrainedEntry entry = Train(id);
    ProtocolSetup setup = Setup(entry.model, 10000, kKeyBits);
    std::vector<DoubleTensor> probes = {entry.data.test.samples[0]};
    auto profile = ProfilePlan(*setup.mp, *setup.dp, probes);
    PPS_CHECK_OK(profile.status());
    const InferencePlan& plan = *setup.plan;

    // Ciphertext wire size at this key size (value + framing).
    const size_t ct_bytes =
        setup.mp->public_key().n_squared().BitLength() / 8 + 17;

    std::printf("%s (avg latency, seconds):\n",
                GetZooInfo(id).dataset_name);
    std::printf("  %-16s", "cores");
    for (int c : core_counts) std::printf(" %9d", c);
    std::printf("\n");

    std::vector<double> with_lat, without_lat;
    for (int cores : core_counts) {
      AllocationProblem problem =
          BuildProblemForCores(profile.value(), GetZooInfo(id), cores);
      auto alloc = IlpAllocator::Solve(problem, /*node_limit=*/300000);
      PPS_CHECK_OK(alloc.status());

      for (bool input_partitioning : {true, false}) {
        auto stages = BuildSimStages(profile.value(), alloc.value());
        // Charge the intra-stage distribution volume of each linear stage
        // to its service time.
        for (size_t r = 0; r < plan.NumRounds(); ++r) {
          const size_t stage_idx = 2 * r + 1;
          const int threads = alloc.value().threads_of_layer[stage_idx];
          int64_t shipped = 0;
          for (const IntegerAffineLayer& op : plan.linear_stages[r].ops) {
            auto part = PartitionOp(op, static_cast<size_t>(threads));
            PPS_CHECK_OK(part.status());
            shipped += input_partitioning
                           ? part.value().elements_with_input_partitioning
                           : part.value().elements_no_partitioning;
          }
          stages[stage_idx].fixed_overhead_seconds +=
              network.TransferSeconds(static_cast<uint64_t>(shipped) *
                                      ct_bytes);
        }
        auto report = SimulateStablePipeline(stages, network, 20);
        PPS_CHECK_OK(report.status());
        (input_partitioning ? with_lat : without_lat)
            .push_back(report.value().avg_latency_seconds);
      }
    }

    std::printf("  %-16s", "no partitioning");
    for (double v : without_lat) std::printf(" %9.3f", v);
    std::printf("\n  %-16s", "partitioning");
    for (double v : with_lat) std::printf(" %9.3f", v);
    std::printf("\n");
    double model_best = 0;
    for (size_t i = 0; i < with_lat.size(); ++i) {
      model_best =
          std::max(model_best, 100 * (1 - with_lat[i] / without_lat[i]));
    }
    std::printf("  max latency reduction: %.2f%%\n\n", model_best);
    if (model_best > best_reduction) {
      best_reduction = model_best;
      best_model = GetZooInfo(id).dataset_name;
    }
  }
  std::printf("best reduction across models: %.2f%% on %s (paper: up to "
              "61.64%%, largest on the conv models)\n",
              best_reduction, best_model);
  return 0;
}
