// Figure 8 (Exp#2) — effectiveness of distributed stream processing.
//
// Four variants per model (healthcare + MNIST, as in the paper):
//   PlainBase     centralized plaintext inference (measured);
//   CipherBase    centralized ciphertext inference (measured: the whole
//                 protocol on one server, one thread, no pipelining);
//   PP-Stream-25  pipelined, 25 cores spread evenly over the stages
//                 (load balancing and tensor partitioning disabled, as in
//                 the paper's Exp#2 setup);
//   PP-Stream-50  same with 50 cores.
//
// The 25/50-core runs execute on the calibrated cluster simulator (this
// sandbox has one core; see DESIGN.md §2): stage costs are measured here,
// then replayed with the target thread counts over a 20-request stream.

#include "bench/bench_common.h"

using namespace ppstream;
using namespace ppstream::bench;

namespace {

/// Even distribution of `total_cores` across stages (the Exp#2 policy).
Allocation EvenCores(const PlanProfile& profile, int total_cores) {
  Allocation alloc;
  const size_t stages = profile.stage_seconds.size();
  alloc.server_of_layer.resize(stages);
  alloc.threads_of_layer.assign(stages, total_cores / static_cast<int>(stages));
  int extra = total_cores % static_cast<int>(stages);
  for (size_t s = 0; s < stages; ++s) {
    if (extra > 0) {
      alloc.threads_of_layer[s] += 1;
      --extra;
    }
    if (alloc.threads_of_layer[s] < 1) alloc.threads_of_layer[s] = 1;
    // Alternate server ids by provider side so transfers are modelled.
    alloc.server_of_layer[s] = profile.stage_class[s] > 0 ? 0 : 1;
  }
  return alloc;
}

}  // namespace

int main() {
  std::printf("== Figure 8 (Exp#2): PlainBase / CipherBase / PP-Stream-25 / "
              "PP-Stream-50 ==\n\n");
  constexpr int kKeyBits = 512;

  std::printf("%-10s %14s %14s %14s %14s\n", "model", "PlainBase(s)",
              "CipherBase(s)", "PP-Stream-25", "PP-Stream-50");
  PrintRule();

  double cipher_sum = 0, pps25_sum = 0, pps50_sum = 0;
  int rows = 0;

  for (ZooModelId id :
       {ZooModelId::kBreast, ZooModelId::kHeart, ZooModelId::kCardio,
        ZooModelId::kMnist1, ZooModelId::kMnist2, ZooModelId::kMnist3}) {
    TrainedEntry entry = Train(id);

    // PlainBase: measured float inference.
    WallTimer timer;
    constexpr int kPlainReps = 50;
    for (int i = 0; i < kPlainReps; ++i) {
      PPS_CHECK_OK(entry.model.Forward(entry.data.test.samples[0]).status());
    }
    const double plain = timer.ElapsedSeconds() / kPlainReps;

    // CipherBase: one measured full protocol pass, single thread.
    ProtocolSetup setup = Setup(entry.model, 10000, kKeyBits);
    std::vector<DoubleTensor> probes = {entry.data.test.samples[0]};
    auto profile = ProfilePlan(*setup.mp, *setup.dp, probes);
    PPS_CHECK_OK(profile.status());
    double cipher = 0;
    for (double t : profile.value().stage_seconds) cipher += t;

    // PP-Stream-25/50: simulator replay with even core split.
    auto run = [&](int cores) {
      Allocation alloc = EvenCores(profile.value(), cores);
      auto report = SimulateStablePipeline(
          BuildSimStages(profile.value(), alloc), SimNetwork{}, 20);
      PPS_CHECK_OK(report.status());
      return report.value().avg_latency_seconds;
    };
    const double pps25 = run(25);
    const double pps50 = run(50);

    std::printf("%-10s %14.6f %14.2f %14.3f %14.3f\n",
                GetZooInfo(id).dataset_name, plain, cipher, pps25, pps50);
    cipher_sum += cipher;
    pps25_sum += pps25;
    pps50_sum += pps50;
    ++rows;
  }
  PrintRule();
  std::printf("\naverage reduction vs CipherBase: PP-Stream-25 %.2f%%, "
              "PP-Stream-50 %.2f%% (paper: 95.63%% / 97.46%%)\n",
              100 * (1 - pps25_sum / cipher_sum),
              100 * (1 - pps50_sum / cipher_sum));
  std::printf("PP-Stream-50 vs PP-Stream-25 reduction: %.2f%% (paper: "
              "39.24%%)\n",
              100 * (1 - pps50_sum / pps25_sum));
  (void)rows;
  return 0;
}
