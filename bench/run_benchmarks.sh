#!/usr/bin/env bash
# Benchmark driver for the crypto hot path.
#
# Runs bench_micro_crypto (google-benchmark), bench_fig1_paillier, and
# bench_table3_models, and distills the micro-benchmark console output into
# a machine-readable bench/BENCH_crypto.json with one record per op:
#   {"op": "BM_PaillierEncrypt/512", "ns_per_op": 451234, "key_bits": 512}
#
# key_bits is the Paillier key size the op ran under: the benchmark arg for
# ops that sweep key size, 512 for the remaining Paillier ops (their fixed
# key, see bench_micro_crypto.cc), and 0 for non-Paillier primitives where
# the arg is an operand width instead.
#
# Also runs bench_pipeline, which writes bench/BENCH_pipeline.json
# (per-stage latency quantiles + crypto/net counter totals from the
# metrics registry) and bench/metrics.prom; the Prometheus exposition is
# linted both by the bench itself and by the awk check below — a
# malformed exposition fails the run.
#
# And bench_chaos_tcp, which writes bench/BENCH_chaos.json (recovery
# latency + retry-storm amplification over a real loopback server under
# socket resets and a server restart) plus its own Prometheus exposition
# — the only one where the whole resilience family (net.session.*,
# net.reconnects, fault.injected.net.sock.*) is live at once; both
# expositions are held to the required-families expectations below.
#
# And bench_serving, which sweeps 1..N concurrent client sessions against
# a live TCP server with the admin endpoint on, writes
# bench/BENCH_serving.json (per-level p50/p99 latency, throughput, pool
# miss rate, cost-attribution outcome) and a Prometheus exposition
# scraped LIVE from /metrics mid-sweep — that file must carry the
# serving + cost families and pass the same awk lint.
#
# Usage:
#   bench/run_benchmarks.sh            # full run (writes BENCH_crypto.json)
#   bench/run_benchmarks.sh --smoke    # CI smoke: 1-iteration benches,
#                                      # 256-bit keys only for Figure 1,
#                                      # serving sweep capped at 8 sessions
#
# This driver is self-contained: it does not build or invoke ppslint (the
# lint_prom check below is its own awk, unrelated to the source linter),
# so --smoke runs green whether or not CI's lint job has even started.
#
# Env overrides: BUILD_DIR (default build), OUT_JSON, PIPELINE_JSON,
# CHAOS_JSON, SERVING_JSON, PROM_OUT, SERVING_PROM, MIN_TIME,
# FIG1_MAX_BITS.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT_JSON=${OUT_JSON:-bench/BENCH_crypto.json}
PIPELINE_JSON=${PIPELINE_JSON:-bench/BENCH_pipeline.json}
CHAOS_JSON=${CHAOS_JSON:-bench/BENCH_chaos.json}
SERVING_JSON=${SERVING_JSON:-bench/BENCH_serving.json}
PROM_OUT=${PROM_OUT:-bench/metrics.prom}
SERVING_PROM=${SERVING_PROM:-bench/serving_metrics.prom}

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
fi

if [[ $SMOKE -eq 1 ]]; then
  # min_time=0 makes google-benchmark settle for a single iteration.
  MIN_TIME=0
  FIG1_MAX_BITS=256
else
  MIN_TIME=${MIN_TIME:-0.15}
  FIG1_MAX_BITS=${FIG1_MAX_BITS:-1024}
fi

for bin in bench_micro_crypto bench_fig1_paillier bench_table3_models \
           bench_pipeline bench_chaos_tcp bench_serving; do
  if [[ ! -x "$BUILD_DIR/bench/$bin" ]]; then
    echo "error: $BUILD_DIR/bench/$bin not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

MICRO_TXT=$(mktemp)
CHAOS_PROM=$(mktemp)
trap 'rm -f "$MICRO_TXT" "$CHAOS_PROM"' EXIT

echo "== bench_micro_crypto (min_time=${MIN_TIME}s) =="
"$BUILD_DIR/bench/bench_micro_crypto" \
  --benchmark_min_time="$MIN_TIME" | tee "$MICRO_TXT"

echo
echo "== bench_fig1_paillier (max key bits: $FIG1_MAX_BITS) =="
"$BUILD_DIR/bench/bench_fig1_paillier" "$FIG1_MAX_BITS"

echo
echo "== bench_table3_models =="
"$BUILD_DIR/bench/bench_table3_models"

echo
echo "== bench_pipeline (telemetry end-to-end) =="
PIPELINE_ARGS=(--out "$PIPELINE_JSON" --prom "$PROM_OUT")
if [[ $SMOKE -eq 1 ]]; then
  PIPELINE_ARGS+=(--smoke)
fi
"$BUILD_DIR/bench/bench_pipeline" "${PIPELINE_ARGS[@]}"

echo
echo "== bench_chaos_tcp (recovery latency / retry amplification) =="
CHAOS_ARGS=(--out "$CHAOS_JSON" --prom "$CHAOS_PROM")
if [[ $SMOKE -eq 1 ]]; then
  CHAOS_ARGS+=(--smoke)
fi
"$BUILD_DIR/bench/bench_chaos_tcp" "${CHAOS_ARGS[@]}"

echo
echo "== bench_serving (concurrency sweep + live /metrics scrape) =="
SERVING_ARGS=(--out "$SERVING_JSON" --prom "$SERVING_PROM")
if [[ $SMOKE -eq 1 ]]; then
  SERVING_ARGS+=(--smoke)
fi
"$BUILD_DIR/bench/bench_serving" "${SERVING_ARGS[@]}"

# Second, independent lint of a Prometheus exposition: every sample line
# must be `name value` with a bare-metric or labeled-metric name and a
# numeric (or +/-Inf / NaN) value, and every name must carry a # TYPE.
lint_prom() {
  awk '
    /^#[ ]TYPE[ ]/ { typed[$3] = 1; next }
    /^#/ || /^$/ { next }
    {
      if (NF != 2) { print "prom lint: bad sample: " $0; exit 1 }
      name = $1
      sub(/\{.*\}$/, "", name)
      if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) {
        print "prom lint: bad metric name: " $1; exit 1
      }
      if ($2 !~ /^[+-]?([0-9]|Inf|NaN)/) {
        print "prom lint: non-numeric value: " $0; exit 1
      }
      # Histogram series (_bucket/_sum/_count) inherit their familys TYPE.
      base = name
      sub(/_(bucket|sum|count)$/, "", base)
      if (!(name in typed) && !(base in typed)) {
        print "prom lint: sample without # TYPE: " name; exit 1
      }
    }
  ' "$1"
  echo "prom lint OK ($1)"
}

# Required families. Every channel-opening process registers the
# resilience counters up front (NetMetrics in src/net/transport.cc), so
# they must appear — at zero if nothing broke — in ANY exposition,
# metrics.prom included:
#   pps_net_reconnects           successful re-dials after a drop
#   pps_net_reconnect_seconds    recovery latency histogram
#   pps_net_exchange_attempts    physical wire attempts (resends included)
#   pps_net_inference_restarts   whole-inference restarts (session lost)
#   pps_net_pings                liveness probes sent
# The pipeline bench compiles plans through the pass pipeline, so its
# exposition must carry the planner families (pps_planner_pass_runs,
# pps_planner_ir_{nodes,tensors}, pps_planner_fuse_ops_fused,
# pps_planner_dce_tensors_removed, per-pass seconds histograms).
# Its packing probe runs the packed-ciphertext path and the compression
# pass, so the packing codec, packed-kernel, packing-pass, and
# quantization families must be live too:
#   pps_crypto_pack_{packs,unpacks,hom_adds}       codec + kernel fold ops
#   pps_planner_pack_{rounds_packed,rounds_fallback,kernels_lowered}
#   pps_nn_quant_{weights_pruned,layers_compressed} compression pass
#   pps_nn_quant_distinct_values_{before,after}     group-mul lever
# The chaos bench exposition must additionally carry the families only a
# session-serving + fault-injected process produces:
#   pps_net_session_{created,resumed,lost,evicted,active} session lifecycle
#   pps_fault_injected_error_net_sock_reset               fired socket faults
require_families() {
  local file=$1; shift
  for family in "$@"; do
    if ! grep -q "^$family" "$file"; then
      echo "prom lint: required family missing from $file: $family" >&2
      exit 1
    fi
  done
  echo "prom required families OK ($file: $#)"
}

lint_prom "$PROM_OUT"
lint_prom "$CHAOS_PROM"
require_families "$PROM_OUT" \
  pps_net_reconnects pps_net_reconnect_seconds pps_net_exchange_attempts \
  pps_net_inference_restarts pps_net_pings \
  pps_planner_pass_runs pps_planner_ir_nodes pps_planner_ir_tensors \
  pps_planner_fuse_ops_fused pps_planner_dce_tensors_removed \
  pps_planner_pass_fuse_affine_chains_seconds \
  pps_crypto_pack_packs pps_crypto_pack_unpacks pps_crypto_pack_hom_adds \
  pps_planner_pack_rounds_packed pps_planner_pack_rounds_fallback \
  pps_planner_pack_kernels_lowered \
  pps_nn_quant_weights_pruned pps_nn_quant_layers_compressed \
  pps_nn_quant_distinct_values_before pps_nn_quant_distinct_values_after
require_families "$CHAOS_PROM" \
  pps_net_reconnects pps_net_reconnect_seconds pps_net_exchange_attempts \
  pps_net_inference_restarts pps_net_pings \
  pps_net_session_created pps_net_session_resumed pps_net_session_lost \
  pps_net_session_evicted pps_net_session_active \
  pps_fault_injected_error_net_sock_reset
# The serving exposition is scraped live from the admin endpoint while
# the sweep is in flight, so it must carry the serving-path and
# cost-attribution families a dashboard would alert on.
lint_prom "$SERVING_PROM"
require_families "$SERVING_PROM" \
  pps_serving_requests pps_serving_request_seconds pps_serving_frames \
  pps_serving_inflight \
  pps_cost_reconciled pps_cost_contended_skips pps_cost_overrun \
  pps_cost_scalar_mul_ratio pps_cost_encrypt_ratio \
  pps_crypto_scalar_muls pps_crypto_encrypts pps_crypto_pool_hits \
  pps_net_session_created pps_net_session_active

# Console rows look like:  BM_PaillierEncrypt/512   451234 ns   451100 ns   10
awk '
  BEGIN { n = 0 }
  /^BM_/ {
    name = $1; ns = $2
    split(name, parts, "/")
    base = parts[1]
    arg = (length(parts) > 1) ? parts[2] : ""
    kb = 0
    if (base == "BM_PaillierEncrypt" || base == "BM_PaillierDecrypt" ||
        base == "BM_PaillierEncryptPooled") {
      kb = arg + 0
    } else if (base ~ /^BM_Paillier/) {
      kb = 512
    }
    ops[n] = name; nss[n] = ns; kbs[n] = kb; n++
  }
  END {
    printf("[\n")
    for (i = 0; i < n; i++) {
      printf("  {\"op\": \"%s\", \"ns_per_op\": %s, \"key_bits\": %d}%s\n",
             ops[i], nss[i], kbs[i], (i + 1 < n) ? "," : "")
    }
    printf("]\n")
  }
' "$MICRO_TXT" > "$OUT_JSON"

echo
echo "wrote $OUT_JSON ($(grep -c '"op"' "$OUT_JSON") ops)"
