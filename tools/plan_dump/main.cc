// plan_dump: prints the planner IR of a compiled model in a stable
// textual format, optionally after every optimizer pass (--pass-trace).
// The golden test compiles the deterministic hand-weighted "tiny" model
// and diffs the trace against tools/plan_dump/golden/tiny_pass_trace.txt,
// so any change to the IR printer, pass order, or pass behavior shows up
// as a reviewable text diff.
//
// Usage:
//   plan_dump --model tiny|Breast|Heart|...|MNIST-1|...
//             [--scale N] [--fusion count|always|never] [--packing KEYBITS]
//             [--pass-trace] [--write-golden FILE | --check-golden FILE]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/plan.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "nn/model_zoo.h"
#include "planner/ir.h"
#include "planner/pass.h"

namespace ppstream {
namespace {

// Fixed-weight model exercising decomposition (ScaledSigmoid) and fusion
// (Dense + ScalarScale). Hand-set weights keep the dump bit-stable across
// platforms: no RNG, no libm in weight generation.
Result<Model> MakeTinyModel() {
  Model model(Shape({4}), "tiny");
  auto d1 = std::make_unique<DenseLayer>(4, 3);
  for (int64_t o = 0; o < 3; ++o) {
    for (int64_t i = 0; i < 4; ++i) {
      d1->weights().At({o, i}) = 0.25 * static_cast<double>(o - i);
    }
    d1->bias().At({o}) = 0.125 * static_cast<double>(o);
  }
  PPS_RETURN_IF_ERROR(model.Add(std::move(d1)));
  PPS_RETURN_IF_ERROR(model.Add(std::make_unique<ScaledSigmoidLayer>(0.5)));
  auto d2 = std::make_unique<DenseLayer>(3, 2);
  for (int64_t o = 0; o < 2; ++o) {
    for (int64_t i = 0; i < 3; ++i) {
      d2->weights().At({o, i}) = 0.5 * static_cast<double>(i - o);
    }
    d2->bias().At({o}) = -0.25 * static_cast<double>(o);
  }
  PPS_RETURN_IF_ERROR(model.Add(std::move(d2)));
  PPS_RETURN_IF_ERROR(model.Add(std::make_unique<SoftmaxLayer>()));
  return model;
}

Result<Model> ResolveModel(const std::string& name) {
  if (name == "tiny") return MakeTinyModel();
  for (const ZooInfo& info : AllZooInfos()) {
    if (name == info.dataset_name) return MakeZooModel(info.id, /*seed=*/7);
  }
  return Status::InvalidArgument("unknown model '" + name +
                                 "'; use tiny or a zoo dataset name");
}

// Collects a dump after every pass; the PassManager fires "initial" first.
class TraceCollector : public planner::PassObserver {
 public:
  void AfterPass(const std::string& pass_name,
                 const planner::StageGraph& graph) override {
    sections_.emplace_back(pass_name, graph.ToString());
  }

  std::string Render(bool pass_trace) const {
    std::ostringstream out;
    if (pass_trace) {
      for (const auto& [name, dump] : sections_) {
        out << "==== " << name << "\n" << dump;
      }
    } else if (!sections_.empty()) {
      out << sections_.back().second;
    }
    return out.str();
  }

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

int Fail(const std::string& msg) {
  std::fprintf(stderr, "plan_dump: %s\n", msg.c_str());
  return 1;
}

int RunMain(int argc, char** argv) {
  std::string model_name = "tiny";
  std::string write_golden, check_golden;
  int64_t scale = 100;
  bool pass_trace = false;
  CompileOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--model") {
      const char* v = next();
      if (!v) return Fail("--model needs a value");
      model_name = v;
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return Fail("--scale needs a value");
      scale = std::atoll(v);
    } else if (arg == "--fusion") {
      const char* v = next();
      if (!v) return Fail("--fusion needs count|always|never");
      if (std::strcmp(v, "count") == 0) {
        options.fusion = planner::FusionPolicy::kScalarMulCount;
      } else if (std::strcmp(v, "always") == 0) {
        options.fusion = planner::FusionPolicy::kAlways;
      } else if (std::strcmp(v, "never") == 0) {
        options.fusion = planner::FusionPolicy::kNever;
      } else {
        return Fail("--fusion needs count|always|never");
      }
    } else if (arg == "--packing") {
      const char* v = next();
      if (!v) return Fail("--packing needs a key size in bits");
      planner::PackingSpec spec;
      spec.key_bits = std::atoi(v);
      if (spec.key_bits < 16) return Fail("--packing key size too small");
      options.packing = spec;
    } else if (arg == "--pass-trace") {
      pass_trace = true;
    } else if (arg == "--write-golden") {
      const char* v = next();
      if (!v) return Fail("--write-golden needs a path");
      write_golden = v;
    } else if (arg == "--check-golden") {
      const char* v = next();
      if (!v) return Fail("--check-golden needs a path");
      check_golden = v;
    } else {
      return Fail("unknown argument '" + arg + "'");
    }
  }

  Result<Model> model = ResolveModel(model_name);
  if (!model.ok()) return Fail(model.status().message());

  TraceCollector trace;
  options.pass_observer = &trace;
  options.input_bound = 1.0;
  Result<InferencePlan> plan = CompilePlan(*model, scale, options);
  if (!plan.ok()) return Fail(plan.status().message());

  const std::string text = trace.Render(pass_trace);
  if (!write_golden.empty()) {
    std::ofstream out(write_golden, std::ios::trunc);
    if (!out) return Fail("cannot write " + write_golden);
    out << text;
    std::fprintf(stderr, "plan_dump: wrote %zu bytes to %s\n", text.size(),
                 write_golden.c_str());
    return 0;
  }
  if (!check_golden.empty()) {
    std::ifstream in(check_golden);
    if (!in) return Fail("cannot read " + check_golden);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string want = buf.str();
    if (want == text) {
      std::fprintf(stderr, "plan_dump: %s matches (%zu bytes)\n",
                   check_golden.c_str(), text.size());
      return 0;
    }
    // Report the first differing line so CI logs are actionable.
    std::istringstream got_lines(text), want_lines(want);
    std::string g, w;
    int line = 0;
    while (true) {
      ++line;
      const bool has_g = static_cast<bool>(std::getline(got_lines, g));
      const bool has_w = static_cast<bool>(std::getline(want_lines, w));
      if (!has_g && !has_w) break;
      if (!has_g || !has_w || g != w) {
        std::fprintf(stderr,
                     "plan_dump: golden mismatch at line %d\n"
                     "  want: %s\n  got:  %s\n",
                     line, has_w ? w.c_str() : "<eof>",
                     has_g ? g.c_str() : "<eof>");
        break;
      }
    }
    std::fprintf(stderr,
                 "plan_dump: regenerate with --write-golden %s if the "
                 "change is intentional\n",
                 check_golden.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

}  // namespace
}  // namespace ppstream

int main(int argc, char** argv) { return ppstream::RunMain(argc, argv); }
