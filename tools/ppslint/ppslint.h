// ppslint — privacy- and concurrency-invariant static analyzer for the
// PP-Stream tree (DESIGN.md §10 "Static privacy analysis", §15
// "Concurrency discipline").
//
// Five privacy rules derived from the paper's threat model:
//
//   R1 privacy-boundary   secret-tagged types/values must not reach
//                         BufferWriter / frame-send sites outside the
//                         audited allowlist (src/net/wire.cc methods).
//   R2 entropy-hygiene    rand()/random()/std::mt19937/std::random_device
//                         and friends are banned in src/crypto, src/core,
//                         src/mpc — SecureRng / RandomizerPool only.
//   R3 secret-logging     secret-tagged identifiers must not appear as
//                         values in PPS_SLOG / PPS_LOG statements.
//   R4 variable-time      memcmp / operator== / != on secret buffer state
//                         in crypto scopes must go through
//                         ConstantTimeEquals (src/crypto/constant_time.h).
//   R5 banned-constructs  raw new/delete outside src/bignum, catch (...)
//                         handlers that swallow errors, #include cycles.
//
// Three concurrency rules derived from the serving plane's review history
// (src/util/thread_annotations.h carries the annotation macros):
//
//   R6 lock-discipline    every access to a PPS_GUARDED_BY field must sit
//                         lexically inside a lock scope naming the right
//                         mutex or a method annotated PPS_REQUIRES on it;
//                         annotated classes may not carry un-annotated
//                         mutable siblings; PPS_EXCLUDES functions must
//                         not be called with the excluded mutex held.
//   R7 atomics-hygiene    .load()/.store()/fetch_* need an explicit
//                         memory order in src/net, src/obs, src/stream;
//                         relaxed stores to CAS-owned fields are banned;
//                         CAS-owned atomics may not share a class with
//                         unmarked non-atomic state.
//   R8 blocking-under-lock intra-TU call-graph taint from blocking sinks
//                         (socket ops, poll, sleeps, cv waits, join) to
//                         any scope lexically holding a lock.
//
// Violations print as `file:line: [R-ID] message` and the process exits
// non-zero when any are unsuppressed. A finding is suppressed by
//
//   // ppslint:allow(R-ID reason text)
//
// on the same line, or on its own line directly above the offending line.
// Suppressions are counted and reported; unused ones are flagged so stale
// waivers cannot rot in place.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppslint {

enum class RuleId { kR1, kR2, kR3, kR4, kR5, kR6, kR7, kR8 };

/// Every rule, in order — the single place to extend when adding R9.
const std::vector<RuleId>& AllRules();

/// "R1".."R8".
const char* RuleIdName(RuleId id);

/// One-line rule summary for --list-rules and reports.
const char* RuleIdDescription(RuleId id);

/// Multi-line rationale for --explain: what the rule checks, why, and the
/// historical bug in this tree that it encodes. Ends with a newline.
const char* RuleIdExplanation(RuleId id);

struct Violation {
  std::string file;  // path as passed in (root-relative in normal runs)
  int line = 0;
  RuleId rule = RuleId::kR1;
  std::string message;
};

struct Suppression {
  std::string file;
  int comment_line = 0;  // line of the allow() comment itself
  int target_line = 0;   // line the waiver applies to
  RuleId rule = RuleId::kR1;
  std::string reason;
  bool used = false;
};

struct Report {
  std::vector<Violation> violations;    // unsuppressed only
  std::vector<Suppression> suppressions;
  size_t files_scanned = 0;

  size_t used_suppression_count() const;
  std::vector<const Suppression*> unused_suppressions() const;

  void Merge(Report other);
};

struct Options {
  /// Repo root; scope decisions (R2 directories, R5 bignum exemption,
  /// R1 allowlist) match against paths relative to it.
  std::string root;
  /// Directories resolved against for `#include "..."` edges, in order.
  /// The including file's own directory is always tried first.
  std::vector<std::string> include_roots;
};

/// Analyzes one in-memory translation unit. `rel_path` (root-relative,
/// forward slashes) drives the scope rules; include-cycle analysis is not
/// performed (it needs the file set — use AnalyzeFiles).
Report AnalyzeSource(const Options& opts, const std::string& rel_path,
                     const std::string& content);

/// Analyzes a set of files on disk (paths absolute or relative to
/// Options::root) including the cross-file include-cycle check.
Report AnalyzeFiles(const Options& opts,
                    const std::vector<std::string>& files);

/// Expands directories to the .h/.cc/.cpp files beneath them (sorted),
/// passing plain files through. Paths are returned root-relative.
std::vector<std::string> CollectSourceFiles(
    const Options& opts, const std::vector<std::string>& paths);

}  // namespace ppslint
