// ppslint CLI. Usage:
//
//   ppslint [--root DIR] [--strict] [--list-rules] [paths...]
//
// Paths default to src examples bench (relative to --root, which defaults
// to the current directory). Exit codes: 0 clean, 1 violations (or unused
// suppressions under --strict), 2 usage/environment error.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "ppslint.h"

namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: ppslint [--root DIR] [--strict] [--list-rules] [paths...]\n"
     << "  --root DIR    repo root (default: .)\n"
     << "  --strict      unused ppslint:allow() suppressions fail the run\n"
     << "  --list-rules  print the rule set and exit\n"
     << "  paths         files or directories to scan "
        "(default: src examples bench)\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool strict = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      using ppslint::RuleId;
      for (RuleId id : {RuleId::kR1, RuleId::kR2, RuleId::kR3, RuleId::kR4,
                        RuleId::kR5}) {
        std::cout << ppslint::RuleIdName(id) << "  "
                  << ppslint::RuleIdDescription(id) << "\n";
      }
      return 0;
    }
    if (arg == "--strict") {
      strict = true;
      continue;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "ppslint: --root needs a value\n";
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "ppslint: unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths = {"src", "examples", "bench"};

  ppslint::Options opts;
  opts.root = root;
  opts.include_roots = {"src"};

  const std::vector<std::string> files =
      ppslint::CollectSourceFiles(opts, paths);
  if (files.empty()) {
    std::cerr << "ppslint: no source files under the given paths (root="
              << root << ")\n";
    return 2;
  }

  const ppslint::Report report = ppslint::AnalyzeFiles(opts, files);

  for (const ppslint::Violation& v : report.violations) {
    std::cout << v.file << ":" << v.line << ": ["
              << ppslint::RuleIdName(v.rule) << "] " << v.message << "\n";
  }
  for (const ppslint::Suppression& s : report.suppressions) {
    if (s.used) {
      std::cout << "note: " << s.file << ":" << s.comment_line
                << ": suppressed [" << ppslint::RuleIdName(s.rule) << "] "
                << (s.reason.empty() ? "(no reason given)" : s.reason) << "\n";
    }
  }
  const auto unused = report.unused_suppressions();
  for (const ppslint::Suppression* s : unused) {
    std::cout << (strict ? "error: " : "warning: ") << s->file << ":"
              << s->comment_line << ": unused suppression ["
              << ppslint::RuleIdName(s->rule) << "] — rule no longer fires "
              << "here; remove the ppslint:allow()\n";
  }

  std::cout << "ppslint: scanned " << report.files_scanned << " files: "
            << report.violations.size() << " violation(s), "
            << report.used_suppression_count() << " suppression(s) honored, "
            << unused.size() << " unused suppression(s)\n";

  if (!report.violations.empty()) return 1;
  if (strict && !unused.empty()) return 1;
  return 0;
}
