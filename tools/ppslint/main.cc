// ppslint CLI. Usage:
//
//   ppslint [--root DIR] [--strict] [--list-rules] [--explain R-ID]
//           [--report FILE] [paths...]
//
// Paths default to src examples bench (relative to --root, which defaults
// to the current directory). Exit codes: 0 clean, 1 violations (or unused
// suppressions under --strict), 2 usage/environment error.

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ppslint.h"

namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: ppslint [--root DIR] [--strict] [--list-rules]\n"
     << "               [--explain R-ID] [--report FILE] [paths...]\n"
     << "  --root DIR     repo root (default: .)\n"
     << "  --strict       unused ppslint:allow() suppressions fail the run\n"
     << "  --list-rules   print the rule set and exit\n"
     << "  --explain R-ID print one rule's rationale and the historical\n"
        "                 bug it encodes, then exit\n"
     << "  --report FILE  also write the findings report to FILE\n"
     << "  paths          files or directories to scan "
        "(default: src examples bench)\n";
}

bool LookupRule(const std::string& id, ppslint::RuleId* out) {
  for (ppslint::RuleId rule : ppslint::AllRules()) {
    if (id == ppslint::RuleIdName(rule)) {
      *out = rule;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string report_path;
  bool strict = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") {
      for (ppslint::RuleId id : ppslint::AllRules()) {
        std::cout << ppslint::RuleIdName(id) << "  "
                  << ppslint::RuleIdDescription(id) << "\n";
      }
      return 0;
    }
    if (arg == "--explain") {
      if (i + 1 >= argc) {
        std::cerr << "ppslint: --explain needs a rule id (R1..R8)\n";
        return 2;
      }
      ppslint::RuleId rule;
      const std::string id = argv[++i];
      if (!LookupRule(id, &rule)) {
        std::cerr << "ppslint: unknown rule id '" << id
                  << "' (try --list-rules)\n";
        return 2;
      }
      std::cout << ppslint::RuleIdName(rule) << "  "
                << ppslint::RuleIdDescription(rule) << "\n\n"
                << ppslint::RuleIdExplanation(rule);
      return 0;
    }
    if (arg == "--strict") {
      strict = true;
      continue;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "ppslint: --root needs a value\n";
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (arg == "--report") {
      if (i + 1 >= argc) {
        std::cerr << "ppslint: --report needs a file path\n";
        return 2;
      }
      report_path = argv[++i];
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "ppslint: unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths = {"src", "examples", "bench"};

  ppslint::Options opts;
  opts.root = root;
  opts.include_roots = {"src"};

  const std::vector<std::string> files =
      ppslint::CollectSourceFiles(opts, paths);
  if (files.empty()) {
    std::cerr << "ppslint: no source files under the given paths (root="
              << root << ")\n";
    return 2;
  }

  const ppslint::Report report = ppslint::AnalyzeFiles(opts, files);

  std::ostringstream out;
  for (const ppslint::Violation& v : report.violations) {
    out << v.file << ":" << v.line << ": [" << ppslint::RuleIdName(v.rule)
        << "] " << v.message << "\n";
  }
  for (const ppslint::Suppression& s : report.suppressions) {
    if (s.used) {
      out << "note: " << s.file << ":" << s.comment_line << ": suppressed ["
          << ppslint::RuleIdName(s.rule) << "] "
          << (s.reason.empty() ? "(no reason given)" : s.reason) << "\n";
    }
  }
  const auto unused = report.unused_suppressions();
  for (const ppslint::Suppression* s : unused) {
    out << (strict ? "error: " : "warning: ") << s->file << ":"
        << s->comment_line << ": unused suppression ["
        << ppslint::RuleIdName(s->rule) << "] — rule no longer fires "
        << "here; remove the ppslint:allow()\n";
  }

  // Per-rule finding counts (violations that survived suppression), so a
  // CI log line shows at a glance which family regressed.
  std::map<ppslint::RuleId, size_t> by_rule;
  for (const ppslint::Violation& v : report.violations) ++by_rule[v.rule];
  out << "ppslint: per-rule findings:";
  for (ppslint::RuleId id : ppslint::AllRules()) {
    out << " " << ppslint::RuleIdName(id) << "=" << by_rule[id];
  }
  out << "\n";

  out << "ppslint: scanned " << report.files_scanned << " files: "
      << report.violations.size() << " violation(s), "
      << report.used_suppression_count() << " suppression(s) honored, "
      << unused.size() << " unused suppression(s)\n";

  std::cout << out.str();
  if (!report_path.empty()) {
    std::ofstream f(report_path, std::ios::trunc);
    if (!f) {
      std::cerr << "ppslint: cannot write report to '" << report_path << "'\n";
      return 2;
    }
    f << out.str();
  }

  if (!report.violations.empty()) return 1;
  if (strict && !unused.empty()) return 1;
  return 0;
}
