// ppslint fixture: R1 must stay SILENT when the sink statement sits in an
// audited allowlist method. Analyzed under rel path "src/net/wire.cc"
// (the allowlisted file) by tests/lint_test.cc.

#include "util/buffer.h"

namespace ppstream {

// Same shape as a violation, but EncodeFrame in src/net/wire.cc is on
// the audited allowlist.
std::vector<uint8_t> EncodeFrame(const WireFrame& frame,
                                 const Permutation& permutation) {
  BufferWriter out;
  out.WriteU64(Digest(permutation));
  return out.TakeBytes();
}

}  // namespace ppstream
