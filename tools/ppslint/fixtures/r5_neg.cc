// ppslint fixture: R5 must stay SILENT — smart pointers, deleted
// members, and a rethrowing catch (...).
// Analyzed under rel path "src/stream/r5_neg.cc".

#include <memory>

namespace ppstream {

struct Widget {
  Widget(const Widget&) = delete;             // deleted member, not delete-expr
  Widget& operator=(const Widget&) = delete;  // ditto
};

std::unique_ptr<int> MakeCounter() { return std::make_unique<int>(0); }

int Rethrow() {
  try {
    return MightThrow();
  } catch (...) {
    throw;  // propagates: allowed
  }
}

// "new"/"delete" inside strings and comments are not expressions: new.
const char* kDoc = "never write raw new or delete here";

}  // namespace ppstream
