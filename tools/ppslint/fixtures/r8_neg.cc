// R8 negative fixture: the same blocking work as r8_pos.cc, but the lock
// is always dropped first — once by closing the scope, once with an
// explicit unlock() toggle on a unique_lock.

#include <chrono>
#include <mutex>
#include <thread>

namespace ppstream {

class PeerPump {
 public:
  void Drain() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_ = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  void Flush() {
    std::unique_lock<std::mutex> lock(mutex_);
    pending_ = 0;
    lock.unlock();
    PumpOnce();
  }

 private:
  void PumpOnce() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  mutable std::mutex mutex_;
  int pending_ = 0;
};

}  // namespace ppstream
