// ppslint fixture: R3 MUST fire — a /statusz-style renderer that leaks
// secret material into its debug log. The JSON body itself is built from
// public fields, but the "helpful" render-trace logs the key pair and a
// pool randomizer, which is exactly the leak the admin endpoint's
// non-secret contract forbids. Analyzed under rel path
// "src/net/r3_statusz_pos.cc".

#include <sstream>
#include <string>

#include "util/logging.h"

namespace ppstream {

std::string RenderStatusz(const PaillierKeyPair& keys_, size_t live,
                          uint64_t ordinal) {
  std::ostringstream out;
  out << "{\"sessions\":{\"live\":" << live
      << ",\"entries\":[{\"ordinal\":" << ordinal << "}]}}";
  // BAD: the whole key pair as a structured log value.
  PPS_SLOG(Debug, "statusz.render").Kv("live", live).Kv("keys", keys_);
  return out.str();
}

void TraceRandomizerRefill(const BigInt& randomizer, size_t depth) {
  // BAD: streaming a pool randomizer alongside the (public) depth.
  PPS_LOG(Info) << "pool refilled to " << depth << " head " << randomizer;
}

}  // namespace ppstream
