// R7 negative fixture: the hygienic mirror of r7_pos.cc. Every atomic op
// states its order, the publication store is a release, and the
// CAS-covered plain field is marked PPS_CAS_GUARDED_BY so the protocol
// is visible at the declaration.

#include <atomic>
#include <cstdint>

#include "util/thread_annotations.h"

namespace ppstream {

class SlotJournal {
 public:
  void Publish(uint64_t stamp) {
    uint64_t cur = seq_.load(std::memory_order_acquire);
    while (!seq_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acq_rel)) {
    }
    stamp_words_ = stamp;
    seq_.store(cur + 2, std::memory_order_release);
  }

  bool Ready() const { return ready_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> seq_{0};
  std::atomic<bool> ready_{false};
  uint64_t stamp_words_ PPS_CAS_GUARDED_BY(seq_) = 0;
};

}  // namespace ppstream
