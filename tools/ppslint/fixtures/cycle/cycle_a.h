// ppslint fixture: half of an #include cycle (R5 positive).
#pragma once

#include "cycle_b.h"

struct CycleA {
  int a = 0;
};
