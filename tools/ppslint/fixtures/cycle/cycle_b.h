// ppslint fixture: other half of the #include cycle (R5 positive).
#pragma once

#include "cycle_a.h"

struct CycleB {
  int b = 0;
};
