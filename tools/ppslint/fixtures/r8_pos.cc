// R8 positive fixture: blocking calls reached while a lock is held — once
// directly (sleep under lock_guard) and once transitively through a
// helper defined AFTER its caller, which exercises the end-of-file
// call-graph fixpoint.

#include <chrono>
#include <mutex>
#include <thread>

namespace ppstream {

class PeerPump {
 public:
  void Drain() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));  // R8 direct
  }

  void Flush() {
    std::lock_guard<std::mutex> lock(mutex_);
    PumpOnce();  // R8 transitive: PumpOnce -> sleep_for
  }

 private:
  void PumpOnce() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  mutable std::mutex mutex_;
};

}  // namespace ppstream
