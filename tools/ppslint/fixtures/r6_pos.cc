// R6 positive fixture: lock-discipline violations. Every access pattern
// here is a shape the rule must catch: an unlocked write, a write under
// the WRONG mutex, an un-annotated sibling in an annotated class, and a
// call into a PPS_EXCLUDES function with its mutex held.

#include <mutex>
#include <string>

#include "util/thread_annotations.h"

namespace ppstream {

class RouteTable {
 public:
  void Insert(const std::string& route) {
    entries_ += 1;  // R6: guarded field, no lock held
    label_ = route;
  }

  void Touch() {
    std::lock_guard<std::mutex> lock(aux_mutex_);
    entries_ += 1;  // R6: wrong mutex held
  }

  void Rebuild() PPS_EXCLUDES(mutex_);

  void Flush() {
    std::lock_guard<std::mutex> lock(mutex_);
    Rebuild();  // R6: callee excludes mutex_, which is held here
  }

 private:
  mutable std::mutex mutex_;
  mutable std::mutex aux_mutex_;
  int entries_ PPS_GUARDED_BY(mutex_) = 0;
  std::string label_;  // R6: un-annotated sibling of a guarded member
};

}  // namespace ppstream
