// ppslint fixture: R1 MUST fire — secret-tagged material reaching a
// serialization sink outside the audited allowlist.
// Analyzed under rel path "src/core/r1_pos.cc" by tests/lint_test.cc.

#include "util/buffer.h"

namespace ppstream {

struct PaillierPrivateKey;

// A private key serialized straight into a wire buffer: the exact leak
// R1 exists to catch.
void LeakPrivateKey(const PaillierPrivateKey& private_key,
                    BufferWriter* out) {
  private_key.Serialize(out);
}

// Permutation (obfuscation) state framed for sending.
void LeakPermutation(const Permutation& permutation, BufferWriter* out) {
  out->WriteBytes(PackBytes(permutation));
}

}  // namespace ppstream
