// R6 negative fixture: the disciplined mirror of r6_pos.cc. Every guarded
// access happens under the right lock or inside a PPS_REQUIRES method,
// every mutable member carries an annotation, and the PPS_EXCLUDES callee
// is invoked lock-free. The vandal test in lint_test.cc strips the first
// PPS_GUARDED_BY from this file and asserts R6 starts firing.

#include <mutex>
#include <string>

#include "util/thread_annotations.h"

namespace ppstream {

class RouteTable {
 public:
  void Insert(const std::string& route) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_ += 1;
    label_ = route;
  }

  int Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
  }

  void Rebuild() PPS_EXCLUDES(mutex_);

  void Flush() {
    Rebuild();  // mutex_ not held: the EXCLUDES contract is honored
  }

 private:
  void CompactLocked() PPS_REQUIRES(mutex_) { entries_ = 0; }

  mutable std::mutex mutex_;
  int entries_ PPS_GUARDED_BY(mutex_) = 0;
  std::string label_ PPS_GUARDED_BY(mutex_);
};

}  // namespace ppstream
