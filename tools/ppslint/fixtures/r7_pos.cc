// R7 positive fixture: atomics-hygiene violations. An implicit
// (seq_cst) memory order, a relaxed store to a field that elsewhere runs
// a CAS loop, and a non-atomic member sharing the class with that
// CAS-owned atomic without a PPS_CAS_GUARDED_BY marker.

#include <atomic>
#include <cstdint>

namespace ppstream {

class SlotJournal {
 public:
  void Publish(uint64_t stamp) {
    uint64_t cur = seq_.load(std::memory_order_acquire);
    while (!seq_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acq_rel)) {
    }
    stamp_words_ = stamp;
    seq_.store(cur + 2, std::memory_order_relaxed);  // R7: relaxed CAS store
  }

  bool Ready() const {
    return ready_.load();  // R7: implicit seq_cst order
  }

 private:
  std::atomic<uint64_t> seq_{0};
  std::atomic<bool> ready_{false};
  uint64_t stamp_words_ = 0;  // R7: unmarked sibling of CAS-owned seq_
};

}  // namespace ppstream
