// ppslint fixture: R5 MUST fire — raw new/delete outside src/bignum and
// an error-swallowing catch (...).
// Analyzed under rel path "src/stream/r5_pos.cc".

namespace ppstream {

int* MakeCounter() {
  return new int(0);  // raw new
}

void DropCounter(int* p) {
  delete p;  // raw delete
}

int Swallow() {
  try {
    return MightThrow();
  } catch (...) {
    // error dropped on the floor
  }
  return -1;
}

}  // namespace ppstream
