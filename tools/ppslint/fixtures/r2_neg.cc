// ppslint fixture: R2 must stay SILENT — approved randomness only, plus
// identifiers that merely resemble banned names.
// Analyzed under rel path "src/crypto/r2_neg.cc".

#include "crypto/randomizer_pool.h"
#include "crypto/secure_rng.h"

namespace ppstream {

uint64_t GoodDraw() {
  SecureRng rng = SecureRng::FromSeed(7);
  return rng.NextU64();
}

// Longer identifiers containing banned substrings are not matches.
int randomize_layout(int x) { return x + 1; }

struct Sampler {
  // Member functions named like libc calls are not the libc calls.
  int rand() const { return 4; }
  int time() const { return 0; }
};

int MemberCalls(const Sampler& s) { return s.rand() + s.time(); }

// Banned names inside strings and comments never fire: mt19937, rand().
const char* kDoc = "never seed std::mt19937 from time()";

}  // namespace ppstream
