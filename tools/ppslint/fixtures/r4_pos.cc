// ppslint fixture: R4 MUST fire — variable-time comparisons on secret
// state in a crypto scope. Analyzed under rel path "src/crypto/r4_pos.cc".

#include <cstring>

namespace ppstream {

struct Obfuscator {
  std::vector<uint32_t> map_;

  bool SameMapping(const Obfuscator& o) const {
    return map_ == o.map_;  // early-exit vector compare on secret state
  }
};

bool DigestMatch(const uint8_t* a, const uint8_t* b, size_t n) {
  return std::memcmp(a, b, n) == 0;  // variable-time compare
}

}  // namespace ppstream
