// ppslint fixture: bottom of an acyclic include chain (R5 negative).
#pragma once

struct ChainB {
  int b = 0;
};
