// ppslint fixture: top of an acyclic include chain (R5 negative).
#pragma once

#include "chain_b.h"

struct ChainA {
  ChainB b;
};
