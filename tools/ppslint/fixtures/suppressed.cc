// ppslint fixture: suppression mechanics. The first raw new is waived by
// a ppslint:allow on its own line (applies to the next code line), the
// second by an end-of-line comment, the third is NOT waived (wrong rule
// id), and the final allow() is unused.
// Analyzed under rel path "src/stream/suppressed.cc".

namespace ppstream {

int* WaivedAbove() {
  // ppslint:allow(R5 fixture demonstrates next-line suppression)
  return new int(1);
}

int* WaivedInline() {
  return new int(2);  // ppslint:allow(R5 fixture demonstrates same-line suppression)
}

int* NotWaived() {
  // ppslint:allow(R2 wrong rule id, so the R5 finding below survives)
  return new int(3);
}

// ppslint:allow(R5 nothing fires on the next line, so this is unused)
int Plain() { return 4; }

}  // namespace ppstream
