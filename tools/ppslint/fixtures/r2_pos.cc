// ppslint fixture: R2 MUST fire — banned entropy sources in a crypto
// scope. Analyzed under rel path "src/crypto/r2_pos.cc".

#include <cstdlib>
#include <random>

namespace ppstream {

int WeakCoin() {
  return rand() % 2;  // libc rand: banned
}

unsigned SeededEngine() {
  std::mt19937 gen(static_cast<unsigned>(time(nullptr)));  // banned twice
  return gen();
}

unsigned DeviceDraw() {
  std::random_device rd;  // banned outside SecureRng::FromEntropy
  return rd();
}

}  // namespace ppstream
