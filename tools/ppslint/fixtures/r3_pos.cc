// ppslint fixture: R3 MUST fire — secret-tagged identifiers as log
// values. Analyzed under rel path "src/stream/r3_pos.cc".

#include "util/logging.h"

namespace ppstream {

void LogSecrets(const Permutation& permutation, uint64_t request_id) {
  PPS_SLOG(Debug, "obfuscate.applied")
      .Kv("request", request_id)
      .Kv("mapping", permutation);
}

void StreamSecret(const BigInt& private_key) {
  PPS_LOG(Info) << "loaded key " << private_key;
}

}  // namespace ppstream
