// ppslint fixture: R4 must stay SILENT — constant-time compares,
// presence checks, and container-position probes are all fine.
// Analyzed under rel path "src/crypto/r4_neg.cc".

#include "crypto/constant_time.h"

namespace ppstream {

struct Obfuscator {
  std::vector<uint32_t> map_;

  bool SameMapping(const Obfuscator& o) const {
    return ConstantTimeEquals(map_, o.map_);
  }
};

struct Store {
  std::map<uint64_t, int> permutations_;
  std::unique_ptr<int> rerand_pool_;

  bool Has(uint64_t id) const {
    // Positional probe: leaks which request has state, not its contents.
    return permutations_.find(id) != permutations_.end();
  }

  bool Enabled() const {
    return rerand_pool_ != nullptr;  // pointer presence, not contents
  }
};

// Comparisons on untagged values never fire.
bool PublicCompare(int round, int total) { return round == total; }

}  // namespace ppstream
