// ppslint fixture: R3 must stay SILENT — logs carry only public
// metadata; secrets appear in nearby non-log statements.
// Analyzed under rel path "src/stream/r3_neg.cc".

#include "util/logging.h"

namespace ppstream {

void LogMetadata(size_t stages, uint64_t request_id) {
  PPS_SLOG(Debug, "engine.start")
      .Kv("stages", stages)
      .Kv("request", request_id);
}

void UseSecretsElsewhere(const Permutation& permutation) {
  size_t n = permutation.size();
  PPS_LOG(Info) << "permutation size only: " << n;
}

// The word "permutation" in a message string is not an identifier leak.
void LogString() { PPS_SLOG(Warn, "obf.skip").Kv("why", "no permutation"); }

}  // namespace ppstream
