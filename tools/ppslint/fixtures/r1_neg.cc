// ppslint fixture: R1 must stay SILENT — only public material reaches
// serialization sinks; secret tags appear, but never in a sink statement.
// Analyzed under rel path "src/core/r1_neg.cc" by tests/lint_test.cc.

#include "util/buffer.h"

namespace ppstream {

// Ciphertexts are the protocol's wire currency: fine to serialize.
void SendCiphertext(const Ciphertext& c, BufferWriter* out) {
  c.Serialize(out);
}

// Public key crosses during the handshake by design.
void SendPublicKey(const PaillierPublicKey& pk, BufferWriter* out) {
  pk.Serialize(out);
}

// Secret-tagged identifiers in non-sink statements are fine.
int CountPermutations(const Permutation& permutation) {
  return static_cast<int>(permutation.size());
}

// A secret tag inside a string literal is not an identifier.
const char* Describe(BufferWriter* out) {
  out->WriteString("private_key stays home");
  return "ok";
}

}  // namespace ppstream
