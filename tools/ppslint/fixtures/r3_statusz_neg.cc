// ppslint fixture: R3 must stay SILENT — a /statusz-style renderer that
// honors the non-secret contract: the JSON and its logs carry only
// ordinals, counts, and ages. Secret-flavored WORDS appear, but only
// inside string literals (JSON keys), never as identifiers reaching a
// log. Analyzed under rel path "src/net/r3_statusz_neg.cc".

#include <sstream>
#include <string>

#include "util/logging.h"

namespace ppstream {

std::string RenderStatusz(size_t live, size_t max_sessions, uint64_t ordinal,
                          double age_seconds, size_t pool_depth) {
  std::ostringstream out;
  out << "{\"sessions\":{\"live\":" << live << ",\"max\":" << max_sessions
      << ",\"entries\":[{\"ordinal\":" << ordinal
      << ",\"age_seconds\":" << age_seconds << "}]}"
      << ",\"randomizer_pool\":{\"depth\":" << pool_depth << "}}";
  // Public metadata only: counts and the public session ordinal.
  PPS_SLOG(Debug, "statusz.render")
      .Kv("live", live)
      .Kv("ordinal", ordinal)
      .Kv("pool_depth", pool_depth);
  return out.str();
}

void LogPoolShape(size_t depth, size_t capacity) {
  // The word "randomizer" in the message string is not an identifier leak.
  PPS_LOG(Info) << "randomizer pool at " << depth << "/" << capacity;
}

}  // namespace ppstream
