#include "concurrency.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace ppslint {
namespace {

// ---------------------------------------------------------------------------
// Vocabulary.

const std::unordered_set<std::string>& LockScopeTypes() {
  static const std::unordered_set<std::string> kSet = {
      "lock_guard",      "unique_lock",     "scoped_lock", "shared_lock",
      "MutexLock",       "ReaderMutexLock", "WriterMutexLock",
  };
  return kSet;
}

// Blocking free functions (libc I/O, multiplexers, sleeps). Lowercase
// libc names get the same declaration guards R2 uses so `int read(...)`
// in a class is never mistaken for a call.
const std::unordered_set<std::string>& FreeBlockingSinks() {
  static const std::unordered_set<std::string> kSet = {
      "poll",      "select",      "connect", "accept",   "read",
      "write",     "recv",        "send",    "usleep",   "nanosleep",
      "sleep_for", "sleep_until",
  };
  return kSet;
}

// Blocking methods of the tree's own net layer plus std::thread::join.
// Wrapper helpers (SendFrameBytes, Exchange, ...) are reached through
// intra-file call-graph propagation, not by listing.
const std::unordered_set<std::string>& MethodBlockingSinks() {
  static const std::unordered_set<std::string> kSet = {
      "SendAll", "RecvAll", "RecvSome", "WaitReadable",
      "Accept",  "Connect", "join",
  };
  return kSet;
}

const std::unordered_set<std::string>& AtomicOrderedOps() {
  static const std::unordered_set<std::string> kSet = {
      "load",      "store",     "exchange",  "fetch_add",
      "fetch_sub", "fetch_and", "fetch_or",  "fetch_xor",
  };
  return kSet;
}

// Member declarations containing one of these identifiers are
// synchronization primitives or thread handles, exempt from the R6/R7
// sibling-completeness checks (they ARE the protection / lifecycle).
const std::unordered_set<std::string>& SyncTypeTokens() {
  static const std::unordered_set<std::string> kSet = {
      "mutex",       "shared_mutex",       "recursive_mutex",
      "timed_mutex", "condition_variable", "condition_variable_any",
      "thread",      "jthread",            "once_flag",
      "atomic_flag",
  };
  return kSet;
}

bool IsControlKeyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "catch" || t == "return" || t == "sizeof" || t == "constexpr" ||
         t == "consteval";
}

// R7's directory scope: the concurrent serving plane.
bool InR7Scope(const std::string& rel_path) {
  return rel_path.rfind("src/net/", 0) == 0 ||
         rel_path.rfind("src/obs/", 0) == 0 ||
         rel_path.rfind("src/stream/", 0) == 0;
}

bool IsIdent(const Token& t, const char* s) {
  return t.kind == TokenKind::kIdentifier && t.text == s;
}

bool IsPunct(const Token& t, const char* s) {
  return t.kind == TokenKind::kPunct && t.text == s;
}

// ---------------------------------------------------------------------------
// The walker. One forward pass over the token stream maintaining a
// lexical frame stack (namespace / class / function / lambda / block),
// per-frame held-lock state, and a per-file call graph for R8.

struct Member {
  std::string name;
  int line = 0;
  bool atomic_member = false;
  bool exempt = false;       // const/static/sync-type/reference/etc.
  bool annotated = false;    // PPS_GUARDED_BY or PPS_CAS_GUARDED_BY
  std::string guard_mutex;   // for PPS_GUARDED_BY
  bool cas_guarded = false;  // PPS_CAS_GUARDED_BY
};

struct Frame {
  enum class Kind { kNamespace, kClass, kEnum, kFunction, kLambda, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;  // class name / function name
  std::string cls;   // function frames: owning class ("" = free function)
  bool ctor_dtor = false;
  std::set<std::string> required;  // PPS_REQUIRES mutexes (function frames)
  std::set<std::string> held;      // mutexes locked in this frame, still held
  std::map<std::string, std::vector<std::string>> lock_vars;
  std::vector<Member> members;  // class frames only
};

struct FnInfo {
  bool blocking = false;
  std::string blocking_via;  // first sink that made it blocking
  std::set<std::string> callees;
};

struct PendingCall {
  std::string callee;
  int line = 0;
  std::vector<std::string> held;
};

class Walker {
 public:
  Walker(std::string rel_path, const LexResult& lex,
         const ConcurrencyFacts* facts, ConcurrencyFacts* collect,
         std::vector<Violation>* out)
      : rel_path_(std::move(rel_path)),
        toks_(lex.tokens),
        facts_(facts),
        collect_(collect),
        out_(out),
        r7_scope_(InR7Scope(rel_path_)) {}

  void Run() {
    size_t stmt_begin = 0;
    for (size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind != TokenKind::kPunct) continue;
      const std::string& t = toks_[i].text;
      if (t == "{") {
        HandleOpen(stmt_begin, i);
        stmt_begin = i + 1;
      } else if (t == "}") {
        ProcessStatement(stmt_begin, i, CurrentFrame());
        HandleClose();
        stmt_begin = i + 1;
      } else if (t == ";") {
        ProcessStatement(stmt_begin, i, CurrentFrame());
        stmt_begin = i + 1;
      }
    }
    ResolveCallGraph();
  }

 private:
  bool collecting() const { return collect_ != nullptr; }

  Frame* CurrentFrame() { return frames_.empty() ? nullptr : &frames_.back(); }

  Frame* InnermostCallable() {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind == Frame::Kind::kFunction ||
          it->kind == Frame::Kind::kLambda) {
        return &*it;
      }
      if (it->kind == Frame::Kind::kClass ||
          it->kind == Frame::Kind::kNamespace) {
        return nullptr;
      }
    }
    return nullptr;
  }

  Frame* InnermostClass() {
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      if (it->kind == Frame::Kind::kClass) return &*it;
    }
    return nullptr;
  }

  // Mutexes lexically held at this point for FIELD-ACCESS purposes.
  // Lambdas are transparent: a cv-wait predicate or locked callback runs
  // under its caller's lock, and flagging `[&]{ return queue_.empty(); }`
  // inside a held scope would be pure noise.
  std::set<std::string> HeldForAccess() {
    std::set<std::string> held;
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      held.insert(it->held.begin(), it->held.end());
      if (it->kind == Frame::Kind::kFunction) {
        held.insert(it->required.begin(), it->required.end());
        break;
      }
      if (it->kind == Frame::Kind::kClass ||
          it->kind == Frame::Kind::kNamespace) {
        break;
      }
    }
    return held;
  }

  // Mutexes held for CALL purposes. Lambdas are a boundary here: a
  // lambda handed to std::thread runs long after the spawning scope's
  // lock is gone, so blocking inside it is not blocking-under-lock.
  std::set<std::string> HeldForCalls() {
    std::set<std::string> held;
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      held.insert(it->held.begin(), it->held.end());
      if (it->kind == Frame::Kind::kLambda) break;
      if (it->kind == Frame::Kind::kFunction) {
        held.insert(it->required.begin(), it->required.end());
        break;
      }
      if (it->kind == Frame::Kind::kClass ||
          it->kind == Frame::Kind::kNamespace) {
        break;
      }
    }
    return held;
  }

  void Emit(int line, RuleId rule, std::string message) {
    if (!out_) return;
    out_->push_back(Violation{rel_path_, line, rule, std::move(message)});
  }

  static std::string JoinNames(const std::set<std::string>& names) {
    std::string s;
    for (const auto& n : names) {
      if (!s.empty()) s += ", ";
      s += "'" + n + "'";
    }
    return s;
  }

  // Matches backwards from the ')' at index j to its '(' within
  // [begin, j]. Returns the '(' index or SIZE_MAX.
  size_t MatchOpenParen(size_t begin, size_t j) const {
    int depth = 1;
    while (j > begin) {
      --j;
      if (toks_[j].kind != TokenKind::kPunct) continue;
      if (toks_[j].text == ")") ++depth;
      else if (toks_[j].text == "(" && --depth == 0) return j;
    }
    return static_cast<size_t>(-1);
  }

  // Matches forward from the '(' at index j to its ')' within [j, end).
  size_t MatchCloseParen(size_t j, size_t end) const {
    int depth = 1;
    while (++j < end) {
      if (toks_[j].kind != TokenKind::kPunct) continue;
      if (toks_[j].text == "(") ++depth;
      else if (toks_[j].text == ")" && --depth == 0) return j;
    }
    return static_cast<size_t>(-1);
  }

  // Last identifier of each top-level comma-separated argument in
  // (open, close) — `&mu_`, `this->mu_`, `registry.mutex_` all reduce to
  // their final identifier, matching how annotations name their guard.
  std::vector<std::string> ArgTailIdents(size_t open, size_t close) const {
    std::vector<std::string> out;
    std::string last;
    int depth = 0;
    for (size_t j = open + 1; j < close; ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(" || t.text == "[" || t.text == "<") ++depth;
        else if (t.text == ")" || t.text == "]" || t.text == ">") --depth;
        else if (t.text == "," && depth == 0) {
          if (!last.empty()) out.push_back(last);
          last.clear();
        }
        continue;
      }
      if (t.kind == TokenKind::kIdentifier) last = t.text;
    }
    if (!last.empty()) out.push_back(last);
    return out;
  }

  bool RangeHasMemoryOrder(size_t open, size_t close) const {
    for (size_t j = open + 1; j < close; ++j) {
      if (toks_[j].kind == TokenKind::kIdentifier &&
          toks_[j].text.rfind("memory_order", 0) == 0) {
        return true;
      }
    }
    return false;
  }

  // -------------------------------------------------------------------------
  // Scope classification.

  struct OpenInfo {
    Frame::Kind kind = Frame::Kind::kBlock;
    std::string name;
    std::string cls;
    bool ctor_dtor = false;
    std::set<std::string> required;
  };

  // Harvests `NAME(args)` where NAME is PPS_REQUIRES / PPS_EXCLUDES and
  // the annotated function name precedes the parameter list. Works on
  // both declarations (`void F() PPS_REQUIRES(m);`) and definitions.
  void HarvestRequiresAnnotations(size_t begin, size_t end) {
    if (!collecting()) return;
    for (size_t j = begin; j < end; ++j) {
      const bool req = IsIdent(toks_[j], "PPS_REQUIRES");
      const bool exc = IsIdent(toks_[j], "PPS_EXCLUDES");
      if (!req && !exc) continue;
      if (j + 1 >= end || !IsPunct(toks_[j + 1], "(")) continue;
      const size_t close = MatchCloseParen(j + 1, end);
      if (close == static_cast<size_t>(-1)) continue;
      // Function name: identifier before the ')' that precedes the macro.
      if (j < begin + 2 || !IsPunct(toks_[j - 1], ")")) continue;
      const size_t params_open = MatchOpenParen(begin, j - 1);
      if (params_open == static_cast<size_t>(-1) || params_open <= begin)
        continue;
      const Token& fn = toks_[params_open - 1];
      if (fn.kind != TokenKind::kIdentifier) continue;
      auto mutexes = ArgTailIdents(j + 1, close);
      auto& dst =
          req ? collect_->requires_fns[fn.text] : collect_->excludes_fns[fn.text];
      dst.insert(mutexes.begin(), mutexes.end());
    }
  }

  OpenInfo Classify(size_t begin, size_t open_brace) {
    OpenInfo info;
    if (open_brace == begin) return info;  // bare block
    const Token& prev = toks_[open_brace - 1];
    if (IsIdent(prev, "try") || IsIdent(prev, "do") || IsIdent(prev, "else")) {
      return info;
    }
    const Token& first = toks_[begin];
    if (IsIdent(first, "namespace")) {
      info.kind = Frame::Kind::kNamespace;
      return info;
    }
    if (IsIdent(first, "enum")) {
      info.kind = Frame::Kind::kEnum;
      return info;
    }
    // class / struct / union, possibly behind a template prefix.
    size_t c = begin;
    if (IsIdent(first, "template")) {
      size_t j = begin + 1;
      if (j < open_brace && IsPunct(toks_[j], "<")) {
        int depth = 0;
        for (; j < open_brace; ++j) {
          if (toks_[j].kind != TokenKind::kPunct) continue;
          if (toks_[j].text == "<") ++depth;
          else if (toks_[j].text == ">") { if (--depth == 0) { ++j; break; } }
          else if (toks_[j].text == ">>") { depth -= 2; if (depth <= 0) { ++j; break; } }
        }
      }
      c = j;
    }
    if (c < open_brace && (IsIdent(toks_[c], "class") ||
                           IsIdent(toks_[c], "struct") ||
                           IsIdent(toks_[c], "union"))) {
      if (c + 1 < open_brace &&
          toks_[c + 1].kind == TokenKind::kIdentifier) {
        info.kind = Frame::Kind::kClass;
        info.name = toks_[c + 1].text;
      }
      return info;  // anonymous struct → block; named → class
    }
    return ClassifyCallable(begin, open_brace, &info);
  }

  // Walks backwards from the '{' over trailing qualifiers, annotation
  // macros, and constructor init lists to decide whether this brace
  // opens a function (or lambda) body, and if so which one.
  OpenInfo ClassifyCallable(size_t begin, size_t open_brace, OpenInfo* info) {
    size_t j = open_brace - 1;
    bool saw_init_list = false;
    while (true) {
      const Token& t = toks_[j];
      if (t.kind == TokenKind::kIdentifier &&
          (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
           t.text == "final" || t.text == "mutable" ||
           t.text == "PPS_NO_THREAD_SAFETY_ANALYSIS")) {
        if (j == begin) return *info;
        --j;
        continue;
      }
      if (IsPunct(t, ":")) {
        // Constructor init-list marker; the parameter list precedes it.
        saw_init_list = true;
        if (j == begin) return *info;
        --j;
        continue;
      }
      if (IsPunct(t, ",")) {
        if (j == begin) return *info;
        --j;
        continue;
      }
      if (IsPunct(t, "]")) {
        // Lambda without a parameter list: `[this] { ... }`.
        info->kind = Frame::Kind::kLambda;
        return *info;
      }
      if (!IsPunct(t, ")")) return *info;  // not a callable shape
      const size_t open = MatchOpenParen(begin, j);
      if (open == static_cast<size_t>(-1) || open == begin) return *info;
      const Token& before = toks_[open - 1];
      if (IsPunct(before, "]")) {
        info->kind = Frame::Kind::kLambda;
        return *info;
      }
      if (before.kind == TokenKind::kIdentifier) {
        if (before.text == "PPS_REQUIRES" || before.text == "PPS_EXCLUDES") {
          // Harvest into the frame (REQUIRES) and keep scanning left.
          if (before.text == "PPS_REQUIRES") {
            auto mutexes = ArgTailIdents(open, j);
            info->required.insert(mutexes.begin(), mutexes.end());
          }
          if (open < begin + 2) return *info;
          j = open - 2;
          continue;
        }
        if (before.text == "noexcept") {
          if (open < begin + 2) return *info;
          j = open - 2;
          continue;
        }
        if (IsControlKeyword(before.text)) return *info;  // if/for/... block
        // Init-list entry (`: name(expr)` / `, name(expr)`) — keep going
        // left toward the real parameter list.
        if (open >= begin + 2 && (IsPunct(toks_[open - 2], ",") ||
                                  IsPunct(toks_[open - 2], ":"))) {
          j = open - 2;
          continue;
        }
        // Found the parameter list; `before` is the function name.
        info->kind = Frame::Kind::kFunction;
        info->name = before.text;
        size_t q = open - 1;  // index of the name
        if (q >= begin + 1 && IsPunct(toks_[q - 1], "~")) {
          info->ctor_dtor = true;
          if (q >= begin + 2) q -= 1;  // step to '~' for qualifier check
        }
        if (q >= begin + 2 && IsPunct(toks_[q - 1], "::") &&
            toks_[q - 2].kind == TokenKind::kIdentifier) {
          info->cls = toks_[q - 2].text;
        }
        if (!info->cls.empty() && info->cls == info->name) {
          info->ctor_dtor = true;
        }
        (void)saw_init_list;
        return *info;
      }
      return *info;
    }
  }

  // -------------------------------------------------------------------------
  // Frame transitions.

  void HandleOpen(size_t stmt_begin, size_t open_brace) {
    OpenInfo info = Classify(stmt_begin, open_brace);
    Frame* parent = CurrentFrame();

    if (info.kind == Frame::Kind::kBlock && parent &&
        parent->kind == Frame::Kind::kClass && open_brace > stmt_begin) {
      // Default member initializer: `std::atomic<bool> x_{false};`.
      RecordMember(stmt_begin, open_brace, parent);
      frames_.push_back(Frame{});  // the initializer braces, contents inert
      return;
    }

    if (info.kind == Frame::Kind::kLambda) {
      // The tokens before the lambda belong to the enclosing statement
      // (`cv_.wait(lock, [&]{...})`): process them in the enclosing
      // frame so cv-wait/blocking/access checks still see them.
      ProcessStatement(stmt_begin, open_brace, parent);
    }

    Frame frame;
    frame.kind = info.kind;
    frame.name = info.name;
    frame.ctor_dtor = info.ctor_dtor;
    frame.required = info.required;

    if (info.kind == Frame::Kind::kFunction) {
      frame.cls = !info.cls.empty()
                      ? info.cls
                      : (InnermostClass() ? InnermostClass()->name : "");
      if (frame.cls == frame.name) frame.ctor_dtor = true;
      // Merge PPS_REQUIRES from the declaration (usually in the header).
      if (facts_) {
        auto it = facts_->requires_fns.find(frame.name);
        if (it != facts_->requires_fns.end()) {
          frame.required.insert(it->second.begin(), it->second.end());
        }
      }
      if (collecting() && !info.required.empty()) {
        collect_->requires_fns[frame.name].insert(info.required.begin(),
                                                  info.required.end());
      }
      current_fn_ = frame.name;
    } else if (info.kind == Frame::Kind::kLambda) {
      Frame* callable = InnermostCallable();
      frame.cls = callable ? callable->cls
                           : (InnermostClass() ? InnermostClass()->name : "");
      if (callable) frame.ctor_dtor = callable->ctor_dtor;
    } else if (info.kind == Frame::Kind::kBlock && parent) {
      // Control-statement header (`if (...)`, `for (...)`): process its
      // tokens attached to the NEW frame so an init-statement lock
      // (`if (std::lock_guard l(m); ...)`) scopes to the block.
      frames_.push_back(frame);
      ProcessStatement(stmt_begin, open_brace, &frames_.back());
      return;
    }
    frames_.push_back(std::move(frame));
  }

  void HandleClose() {
    if (frames_.empty()) return;
    Frame frame = std::move(frames_.back());
    frames_.pop_back();
    if (frame.kind == Frame::Kind::kClass) EvaluateClass(frame);
  }

  // -------------------------------------------------------------------------
  // Class members (R6 completeness + R7 CAS-sibling checks).

  void RecordMember(size_t begin, size_t end, Frame* cls) {
    if (begin >= end) return;
    // Strip access labels glued to the front (`public : int x_`).
    while (end - begin >= 2 && toks_[begin].kind == TokenKind::kIdentifier &&
           (toks_[begin].text == "public" || toks_[begin].text == "private" ||
            toks_[begin].text == "protected") &&
           IsPunct(toks_[begin + 1], ":")) {
      begin += 2;
    }
    if (begin >= end) return;

    HarvestRequiresAnnotations(begin, end);

    Member m;
    bool skip = false;
    bool has_paren = false;
    bool has_eq = false;
    size_t eq_pos = end;
    for (size_t j = begin; j < end; ++j) {
      const Token& t = toks_[j];
      if (t.kind == TokenKind::kIdentifier) {
        const std::string& s = t.text;
        if ((s == "PPS_GUARDED_BY" || s == "PPS_PT_GUARDED_BY" ||
             s == "PPS_CAS_GUARDED_BY") &&
            j + 1 < end && IsPunct(toks_[j + 1], "(")) {
          // The annotation's own parens are not a method declarator.
          const size_t close = MatchCloseParen(j + 1, end);
          if (close != static_cast<size_t>(-1)) {
            j = close;
            continue;
          }
        }
        if (s == "using" || s == "typedef" || s == "friend" ||
            s == "static_assert" || s == "operator" || s == "template" ||
            s == "enum" || s == "class" || s == "struct" || s == "union") {
          skip = true;
          break;
        }
        if (s == "static" || s == "constexpr" || s == "const") m.exempt = true;
        if (s == "atomic") m.atomic_member = true;
        if (SyncTypeTokens().count(s)) m.exempt = true;
      } else if (t.kind == TokenKind::kPunct) {
        if (t.text == "(" || t.text == ")") has_paren = true;
        if (t.text == "=" && !has_eq) {
          has_eq = true;
          eq_pos = j;
        }
      }
    }
    if (skip || has_paren) return;  // method declaration / non-member

    // Annotation wins the naming question: `T name_ PPS_GUARDED_BY(m)`.
    for (size_t j = begin + 1; j < end; ++j) {
      const bool g = IsIdent(toks_[j], "PPS_GUARDED_BY") ||
                     IsIdent(toks_[j], "PPS_PT_GUARDED_BY");
      const bool c = IsIdent(toks_[j], "PPS_CAS_GUARDED_BY");
      if (!g && !c) continue;
      if (toks_[j - 1].kind != TokenKind::kIdentifier) continue;
      if (j + 1 >= end || !IsPunct(toks_[j + 1], "(")) continue;
      const size_t close = MatchCloseParen(j + 1, end);
      if (close == static_cast<size_t>(-1)) continue;
      m.name = toks_[j - 1].text;
      m.line = toks_[j - 1].line;
      m.annotated = true;
      m.cas_guarded = c;
      auto args = ArgTailIdents(j + 1, close);
      if (!args.empty()) m.guard_mutex = args.back();
      break;
    }
    if (!m.annotated) {
      // Plain member: last identifier before the initializer (if any).
      const size_t scan_end = has_eq ? eq_pos : end;
      for (size_t j = scan_end; j > begin;) {
        --j;
        if (toks_[j].kind == TokenKind::kIdentifier) {
          m.name = toks_[j].text;
          m.line = toks_[j].line;
          break;
        }
        if (IsPunct(toks_[j], "]")) {
          // Array declarator `T name[N]` — skip to the matching '['.
          while (j > begin && !IsPunct(toks_[j], "[")) --j;
          continue;
        }
        break;  // trailing punctuation we don't model (bitfields, refs)
      }
    }
    if (m.name.empty()) return;

    if (collecting() && m.annotated) {
      ConcurrencyFacts::Guard guard;
      guard.mutex = m.guard_mutex;
      guard.cas = m.cas_guarded;
      collect_->guarded[{cls->name, m.name}] = guard;
    }
    cls->members.push_back(std::move(m));
  }

  void EvaluateClass(const Frame& frame) {
    if (collecting() || frame.members.empty()) return;
    bool armed_r6 = false;
    for (const Member& m : frame.members) {
      if (m.annotated && !m.cas_guarded) armed_r6 = true;
    }
    std::set<std::string> r6_flagged;
    if (armed_r6) {
      for (const Member& m : frame.members) {
        if (m.annotated || m.exempt || m.atomic_member) continue;
        r6_flagged.insert(m.name);
        Emit(m.line, RuleId::kR6,
             "class '" + frame.name +
                 "' has PPS_GUARDED_BY members but '" + m.name +
                 "' carries no annotation; add PPS_GUARDED_BY / "
                 "PPS_CAS_GUARDED_BY, or make it const/atomic");
      }
    }
    if (!r7_scope_ || !facts_) return;
    // R7c: a CAS-owned atomic (its name is a compare_exchange target)
    // must not share the class with unmarked non-atomic state — the
    // flight-recorder interleave shape.
    std::string cas_owner;
    for (const Member& m : frame.members) {
      if (m.atomic_member && facts_->cas_fields.count(m.name)) {
        cas_owner = m.name;
        break;
      }
    }
    if (cas_owner.empty()) return;
    for (const Member& m : frame.members) {
      if (m.atomic_member || m.annotated || m.exempt) continue;
      if (r6_flagged.count(m.name)) continue;  // already reported under R6
      Emit(m.line, RuleId::kR7,
           "class '" + frame.name + "' mixes CAS-owned atomic '" + cas_owner +
               "' with non-atomic '" + m.name +
               "'; mark it PPS_CAS_GUARDED_BY(" + cas_owner +
               ") if the CAS protocol covers it, or make it atomic");
    }
  }

  // -------------------------------------------------------------------------
  // Statement processing inside functions.

  void ProcessStatement(size_t begin, size_t end, Frame* target) {
    if (begin >= end) return;
    Frame* parent = CurrentFrame();
    if (parent && parent->kind == Frame::Kind::kClass && target == parent) {
      RecordMember(begin, end, parent);
      return;
    }
    HarvestRequiresAnnotations(begin, end);
    if (collecting()) {
      CollectCasTargets(begin, end);
      return;
    }
    if (!InnermostCallable()) return;  // namespace-scope statement

    DetectLockDeclaration(begin, end, target ? target : CurrentFrame());
    DetectLockToggles(begin, end);
    ScanOps(begin, end);
  }

  void CollectCasTargets(size_t begin, size_t end) {
    for (size_t j = begin + 2; j < end; ++j) {
      if (toks_[j].kind != TokenKind::kIdentifier) continue;
      if (toks_[j].text != "compare_exchange_strong" &&
          toks_[j].text != "compare_exchange_weak") {
        continue;
      }
      if (!IsPunct(toks_[j - 1], ".") && !IsPunct(toks_[j - 1], "->")) continue;
      if (toks_[j - 2].kind != TokenKind::kIdentifier) continue;
      collect_->cas_fields.insert(toks_[j - 2].text);
    }
  }

  void DetectLockDeclaration(size_t begin, size_t end, Frame* target) {
    if (!target) return;
    bool is_lock_decl = false;
    for (size_t j = begin; j < end; ++j) {
      if (toks_[j].kind == TokenKind::kIdentifier &&
          LockScopeTypes().count(toks_[j].text)) {
        // Require declaration position: preceded by :: (std::lock_guard)
        // or at statement start — never `.lock_guard` member access.
        if (j == begin || IsPunct(toks_[j - 1], "::") ||
            toks_[j - 1].kind == TokenKind::kIdentifier) {
          is_lock_decl = true;
        }
        break;
      }
    }
    if (!is_lock_decl) return;
    // The declarator is the last top-level `var(args)` group.
    size_t close = static_cast<size_t>(-1);
    for (size_t j = end; j > begin;) {
      --j;
      if (IsPunct(toks_[j], ")")) {
        close = j;
        break;
      }
    }
    if (close == static_cast<size_t>(-1)) return;
    const size_t open = MatchOpenParen(begin, close);
    if (open == static_cast<size_t>(-1) || open == begin) return;
    const Token& var = toks_[open - 1];
    if (var.kind != TokenKind::kIdentifier) return;
    auto mutexes = ArgTailIdents(open, close);
    bool deferred = false;
    for (auto it = mutexes.begin(); it != mutexes.end();) {
      if (*it == "defer_lock" || *it == "try_to_lock") {
        deferred = deferred || *it == "defer_lock";
        it = mutexes.erase(it);
      } else if (*it == "adopt_lock") {
        it = mutexes.erase(it);
      } else {
        ++it;
      }
    }
    if (mutexes.empty()) return;
    target->lock_vars[var.text] = mutexes;
    if (!deferred) {
      target->held.insert(mutexes.begin(), mutexes.end());
    }
  }

  void DetectLockToggles(size_t begin, size_t end) {
    for (size_t j = begin + 2; j < end; ++j) {
      if (toks_[j].kind != TokenKind::kIdentifier) continue;
      const bool is_lock = toks_[j].text == "lock";
      const bool is_unlock = toks_[j].text == "unlock";
      if (!is_lock && !is_unlock) continue;
      if (!IsPunct(toks_[j - 1], ".") && !IsPunct(toks_[j - 1], "->")) continue;
      if (j + 1 >= end || !IsPunct(toks_[j + 1], "(")) continue;
      if (toks_[j - 2].kind != TokenKind::kIdentifier) continue;
      const std::string& obj = toks_[j - 2].text;
      // Resolve a known lock variable anywhere up the callable's frames;
      // otherwise treat the object as the mutex itself.
      std::vector<std::string> mutexes{obj};
      Frame* owner = nullptr;
      for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        auto lv = it->lock_vars.find(obj);
        if (lv != it->lock_vars.end()) {
          mutexes = lv->second;
          owner = &*it;
          break;
        }
        if (it->kind == Frame::Kind::kFunction ||
            it->kind == Frame::Kind::kClass) {
          break;
        }
      }
      Frame* target = owner ? owner : CurrentFrame();
      if (!target) continue;
      if (is_lock) {
        target->held.insert(mutexes.begin(), mutexes.end());
      } else {
        for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
          for (const auto& m : mutexes) it->held.erase(m);
          if (it->kind == Frame::Kind::kFunction) break;
        }
      }
    }
  }

  void MarkBlocking(const std::string& via) {
    Frame* callable = InnermostCallable();
    if (!callable || callable->kind != Frame::Kind::kFunction) return;
    FnInfo& info = fns_[callable->name];
    if (!info.blocking) {
      info.blocking = true;
      info.blocking_via = via;
    }
  }

  void RecordCallee(const std::string& callee) {
    Frame* callable = InnermostCallable();
    if (!callable || callable->kind != Frame::Kind::kFunction) return;
    fns_[callable->name].callees.insert(callee);
  }

  void ScanOps(size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      if (toks_[j].kind != TokenKind::kIdentifier) continue;
      const std::string& name = toks_[j].text;
      const bool has_call = j + 1 < end && IsPunct(toks_[j + 1], "(");
      const Token* prev = j > 0 ? &toks_[j - 1] : nullptr;
      const bool member_access =
          prev && (IsPunct(*prev, ".") || IsPunct(*prev, "->"));

      if (has_call && member_access && AtomicOrderedOps().count(name)) {
        CheckAtomicOp(j, end);
        continue;
      }
      if (has_call && member_access &&
          (name == "wait" || name == "wait_for" || name == "wait_until")) {
        CheckCvWait(j, end);
        continue;
      }
      if (has_call) {
        HandleCall(j, name, member_access, prev);
        continue;
      }
      CheckFieldAccess(j, name, prev);
    }
  }

  void CheckAtomicOp(size_t j, size_t end) {
    if (!r7_scope_) return;
    const size_t close = MatchCloseParen(j + 1, end);
    const size_t arg_end = close == static_cast<size_t>(-1) ? end : close;
    const std::string& op = toks_[j].text;
    if (!RangeHasMemoryOrder(j + 1, arg_end)) {
      Emit(toks_[j].line, RuleId::kR7,
           "'." + op + "()' without an explicit memory order defaults to "
           "seq_cst; state the intended order (and say why in a comment "
           "if it is not the obvious one)");
      return;
    }
    // R7b: relaxed store into a CAS-owned field publishes state the CAS
    // protocol on that field is supposed to order.
    if (op == "store" && facts_ && j >= 2 &&
        toks_[j - 2].kind == TokenKind::kIdentifier &&
        facts_->cas_fields.count(toks_[j - 2].text)) {
      for (size_t k = j + 2; k < arg_end; ++k) {
        if (IsIdent(toks_[k], "memory_order_relaxed")) {
          Emit(toks_[j].line, RuleId::kR7,
               "relaxed store to '" + toks_[j - 2].text +
                   "', which is a compare_exchange target elsewhere; "
                   "CAS-owned fields publish with release (or stronger)");
          return;
        }
      }
    }
  }

  void CheckCvWait(size_t j, size_t end) {
    MarkBlocking(toks_[j].text);
    const size_t close = MatchCloseParen(j + 1, end);
    const size_t arg_end = close == static_cast<size_t>(-1) ? end : close;
    // The wait's own lock is exempt — waiting releases it.
    std::set<std::string> exempt;
    auto args = ArgTailIdents(j + 1, arg_end);
    if (!args.empty()) {
      const std::string& lock_arg = args.front();
      for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
        auto lv = it->lock_vars.find(lock_arg);
        if (lv != it->lock_vars.end()) {
          exempt.insert(lv->second.begin(), lv->second.end());
          break;
        }
      }
      exempt.insert(lock_arg);  // direct `cv.wait(lock_on_mutex)` fallback
    }
    std::set<std::string> held = HeldForCalls();
    for (const auto& m : exempt) held.erase(m);
    if (!held.empty()) {
      Emit(toks_[j].line, RuleId::kR8,
           "condition-variable '" + toks_[j].text +
               "' while still holding " + JoinNames(held) +
               "; a waiter parks with a foreign lock held");
    }
  }

  void HandleCall(size_t j, const std::string& name, bool member_access,
                  const Token* prev) {
    if (IsControlKeyword(name) || name == "while") return;
    if (!member_access && prev) {
      // Declaration guards, mirroring R2: `int read(...)`, `void *fn(`.
      if (prev->kind == TokenKind::kIdentifier && prev->text != "return" &&
          prev->text != "co_return" && prev->text != "case") {
        return;
      }
      if (IsPunct(*prev, "*") || IsPunct(*prev, "&") || IsPunct(*prev, "~")) {
        return;
      }
    }
    const bool blocking_sink =
        member_access
            ? MethodBlockingSinks().count(name) > 0
            : (FreeBlockingSinks().count(name) > 0 ||
               MethodBlockingSinks().count(name) > 0);
    const std::set<std::string> held = HeldForCalls();
    if (blocking_sink) {
      MarkBlocking(name);
      if (!held.empty()) {
        Emit(toks_[j].line, RuleId::kR8,
             "blocking '" + name + "()' called while holding " +
                 JoinNames(held) +
                 "; release the lock before I/O, sleeps, or joins");
      }
      return;
    }
    RecordCallee(name);
    if (facts_) {
      auto it = facts_->excludes_fns.find(name);
      if (it != facts_->excludes_fns.end()) {
        std::set<std::string> inter;
        for (const auto& m : it->second) {
          if (held.count(m)) inter.insert(m);
        }
        if (!inter.empty()) {
          Emit(toks_[j].line, RuleId::kR6,
               "call to '" + name + "()' which PPS_EXCLUDES " +
                   JoinNames(inter) + " while holding " + JoinNames(inter) +
                   " — it acquires that mutex itself (self-deadlock)");
        }
      }
    }
    if (!held.empty()) {
      pending_calls_.push_back(
          PendingCall{name, toks_[j].line,
                      std::vector<std::string>(held.begin(), held.end())});
    }
  }

  void CheckFieldAccess(size_t j, const std::string& name, const Token* prev) {
    if (!facts_) return;
    if (prev) {
      if (IsPunct(*prev, "::")) return;
      if (IsPunct(*prev, ".") || IsPunct(*prev, "->")) {
        // `this->field_` is an own-field access; `obj.field_` is not ours
        // to judge (the annotation names the owner's mutex).
        if (!(j >= 2 && IsIdent(toks_[j - 2], "this"))) return;
      }
    }
    Frame* callable = InnermostCallable();
    if (!callable || callable->cls.empty() || callable->ctor_dtor) return;
    auto it = facts_->guarded.find({callable->cls, name});
    if (it == facts_->guarded.end() || it->second.cas) return;
    const std::set<std::string> held = HeldForAccess();
    if (held.count(it->second.mutex)) return;
    const auto key = std::make_pair(toks_[j].line, name);
    if (!r6_emitted_.insert(key).second) return;
    Emit(toks_[j].line, RuleId::kR6,
         "'" + name + "' is PPS_GUARDED_BY(" + it->second.mutex +
             ") but no enclosing scope holds it; take a std::lock_guard/"
             "std::unique_lock on '" + it->second.mutex +
             "' or annotate the method PPS_REQUIRES(" + it->second.mutex +
             ")");
  }

  // -------------------------------------------------------------------------
  // R8 transitive resolution over the per-file call graph.

  void ResolveCallGraph() {
    if (collecting()) return;
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [name, info] : fns_) {
        if (info.blocking) continue;
        for (const auto& callee : info.callees) {
          auto it = fns_.find(callee);
          if (it != fns_.end() && it->second.blocking) {
            info.blocking = true;
            info.blocking_via = callee + " -> " + it->second.blocking_via;
            changed = true;
            break;
          }
        }
      }
    }
    for (const PendingCall& call : pending_calls_) {
      auto it = fns_.find(call.callee);
      if (it == fns_.end() || !it->second.blocking) continue;
      std::set<std::string> held(call.held.begin(), call.held.end());
      Emit(call.line, RuleId::kR8,
           "'" + call.callee + "()' blocks (via " + it->second.blocking_via +
               ") and is called while holding " + JoinNames(held) +
               "; release the lock before I/O, sleeps, or waits");
    }
  }

  const std::string rel_path_;
  const std::vector<Token>& toks_;
  const ConcurrencyFacts* facts_;
  ConcurrencyFacts* collect_;
  std::vector<Violation>* out_;
  const bool r7_scope_;

  std::deque<Frame> frames_;
  std::string current_fn_;
  std::map<std::string, FnInfo> fns_;
  std::vector<PendingCall> pending_calls_;
  std::set<std::pair<int, std::string>> r6_emitted_;
};

}  // namespace

void ConcurrencyFacts::Merge(const ConcurrencyFacts& other) {
  guarded.insert(other.guarded.begin(), other.guarded.end());
  for (const auto& [fn, mutexes] : other.requires_fns) {
    requires_fns[fn].insert(mutexes.begin(), mutexes.end());
  }
  for (const auto& [fn, mutexes] : other.excludes_fns) {
    excludes_fns[fn].insert(mutexes.begin(), mutexes.end());
  }
  cas_fields.insert(other.cas_fields.begin(), other.cas_fields.end());
}

void CollectConcurrencyFacts(const LexResult& lex, ConcurrencyFacts* facts) {
  Walker("", lex, nullptr, facts, nullptr).Run();
}

void CheckConcurrency(const std::string& rel_path, const LexResult& lex,
                      const ConcurrencyFacts& facts,
                      std::vector<Violation>* out) {
  Walker(rel_path, lex, &facts, nullptr, out).Run();
}

}  // namespace ppslint
