#include "lexer.h"

#include <cctype>

namespace ppslint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuation we keep as one token, longest first. Only
// operators the rules inspect need to be here; everything else may split
// into single characters without affecting any rule.
constexpr const char* kMultiPunct[] = {
    "<<=", ">>=", "...", "->*", "==", "!=", "<=", ">=", "&&", "||",
    "<<",  ">>",  "->",  "::",  "+=", "-=", "*=", "/=", "%=", "^=",
    "&=",  "|=",  "++",  "--",
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  LexResult Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_has_token_ = false;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && !line_has_token_) {
        LexDirective();
        continue;
      }
      if (c == '"') {
        // Raw strings are recognized by the R prefix token just emitted.
        if (!out_.tokens.empty() && out_.tokens.back().kind ==
                TokenKind::kIdentifier &&
            (out_.tokens.back().text == "R" ||
             out_.tokens.back().text.ends_with("R")) &&
            out_.tokens.back().line == line_ && raw_prefix_adjacent_) {
          LexRawString();
        } else {
          LexString();
        }
        continue;
      }
      if (c == '\'') {
        LexCharLiteral();
        continue;
      }
      if (IsIdentStart(c)) {
        LexIdentifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        LexNumber();
        continue;
      }
      LexPunct();
    }
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokenKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
    line_has_token_ = true;
  }

  void LexLineComment() {
    const int start_line = line_;
    const bool owns_line = !line_has_token_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size() && src_[pos_] != '\n') text += src_[pos_++];
    out_.comments.push_back(Comment{std::move(text), start_line, owns_line});
  }

  void LexBlockComment() {
    const int start_line = line_;
    const bool owns_line = !line_has_token_;
    pos_ += 2;
    std::string text;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    out_.comments.push_back(Comment{std::move(text), start_line, owns_line});
  }

  // Consumes a whole preprocessor directive including backslash
  // continuations; only #include paths are surfaced.
  void LexDirective() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && Peek(1) == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (c == '\n') break;  // newline handled by main loop
      // Directive bodies can still carry comments ("#endif  // FOO") and
      // suppressions; hand them to the comment channel.
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        break;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      text += c;
      ++pos_;
    }
    ParseInclude(text, start_line);
  }

  void ParseInclude(const std::string& directive, int line) {
    size_t i = 1;  // past '#'
    while (i < directive.size() &&
           std::isspace(static_cast<unsigned char>(directive[i])))
      ++i;
    if (directive.compare(i, 7, "include") != 0) return;
    i += 7;
    while (i < directive.size() &&
           std::isspace(static_cast<unsigned char>(directive[i])))
      ++i;
    if (i >= directive.size()) return;
    const char open = directive[i];
    const char close = open == '<' ? '>' : open == '"' ? '"' : '\0';
    if (close == '\0') return;
    const size_t end = directive.find(close, i + 1);
    if (end == std::string::npos) return;
    out_.includes.push_back(IncludeDirective{
        directive.substr(i + 1, end - i - 1), line, open == '<'});
  }

  void LexString() {
    const int start_line = line_;
    std::string text;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        if (src_[pos_ + 1] == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') ++line_;  // unterminated; keep going
      text += src_[pos_++];
    }
    if (pos_ < src_.size()) ++pos_;  // closing quote
    Emit(TokenKind::kString, std::move(text), start_line);
  }

  void LexRawString() {
    const int start_line = line_;
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    std::string text;
    while (pos_ < src_.size() && src_.compare(pos_, closer.size(), closer) != 0) {
      if (src_[pos_] == '\n') ++line_;
      text += src_[pos_++];
    }
    pos_ += std::min(closer.size(), src_.size() - pos_);
    // Replace the R prefix token with the string itself.
    out_.tokens.pop_back();
    Emit(TokenKind::kString, std::move(text), start_line);
  }

  void LexCharLiteral() {
    const int start_line = line_;
    std::string text;
    ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // digit separator misparse guard
      text += src_[pos_++];
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
    Emit(TokenKind::kChar, std::move(text), start_line);
  }

  void LexIdentifier() {
    const int start_line = line_;
    std::string text;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) text += src_[pos_++];
    raw_prefix_adjacent_ = pos_ < src_.size() && src_[pos_] == '"';
    Emit(TokenKind::kIdentifier, std::move(text), start_line);
  }

  void LexNumber() {
    const int start_line = line_;
    std::string text;
    // Good enough for line-oriented rules: digits, hex, separators,
    // exponents, suffixes all glued into one token.
    while (pos_ < src_.size() &&
           (IsIdentChar(src_[pos_]) || src_[pos_] == '.' ||
            ((src_[pos_] == '+' || src_[pos_] == '-') && !text.empty() &&
             (text.back() == 'e' || text.back() == 'E' ||
              text.back() == 'p' || text.back() == 'P')))) {
      text += src_[pos_++];
    }
    Emit(TokenKind::kNumber, std::move(text), start_line);
  }

  void LexPunct() {
    for (const char* op : kMultiPunct) {
      const size_t len = std::char_traits<char>::length(op);
      if (src_.compare(pos_, len, op) == 0) {
        Emit(TokenKind::kPunct, op, line_);
        pos_ += len;
        return;
      }
    }
    Emit(TokenKind::kPunct, std::string(1, src_[pos_]), line_);
    ++pos_;
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  bool line_has_token_ = false;
  bool raw_prefix_adjacent_ = false;
  LexResult out_;
};

}  // namespace

LexResult Lex(const std::string& source) { return Lexer(source).Run(); }

}  // namespace ppslint
