// ppslint concurrency-discipline pass (rules R6/R7/R8, DESIGN.md §15).
//
// Internal interface between the driver (ppslint.cc) and the
// concurrency walker (concurrency.cc). The pass runs in two phases:
//
//   1. CollectConcurrencyFacts over every file in the scan set gathers
//      the cross-file knowledge the rules need: which (class, field)
//      pairs carry PPS_GUARDED_BY / PPS_CAS_GUARDED_BY annotations and
//      name which mutex, which functions are annotated PPS_REQUIRES /
//      PPS_EXCLUDES, and which field names are targets of
//      compare_exchange loops. Annotations live in headers while the
//      accesses live in .cc files, so facts must span the file set.
//
//   2. CheckConcurrency re-walks each file with the merged facts and
//      emits violations:
//        R6 lock discipline   — guarded-field access outside a lexical
//                               lock scope naming the right mutex (or a
//                               PPS_REQUIRES method), un-annotated
//                               mutable siblings in annotated classes,
//                               calls into PPS_EXCLUDES functions with
//                               the excluded mutex held.
//        R7 atomics hygiene   — .load()/.store()/fetch_* without an
//                               explicit memory order in src/net,
//                               src/obs, src/stream; relaxed stores to
//                               CAS-owned fields; non-atomic unmarked
//                               siblings of a CAS-owned atomic.
//        R8 blocking-under-lock — intra-TU call-graph taint from
//                               blocking sinks (socket ops, poll,
//                               sleeps, cv waits, join) to any scope
//                               lexically holding a lock.

#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lexer.h"
#include "ppslint.h"

namespace ppslint {

struct ConcurrencyFacts {
  struct Guard {
    std::string mutex;  // guard expression (last identifier, e.g. "mutex_")
    bool cas = false;   // PPS_CAS_GUARDED_BY (CAS/seqlock discipline)
  };
  /// (class name, field name) -> guard. Class-scoped so an annotated
  /// `state_` in one class never taints a same-named field elsewhere.
  std::map<std::pair<std::string, std::string>, Guard> guarded;
  /// Function name -> mutexes it PPS_REQUIRES callers to hold.
  std::map<std::string, std::set<std::string>> requires_fns;
  /// Function name -> mutexes it PPS_EXCLUDES (caller must NOT hold).
  std::map<std::string, std::set<std::string>> excludes_fns;
  /// Field names that appear as compare_exchange_{strong,weak} targets
  /// anywhere in the scan set (the CAS-owned atomics).
  std::set<std::string> cas_fields;

  void Merge(const ConcurrencyFacts& other);
};

/// Phase 1: harvest annotations and CAS targets from one file.
void CollectConcurrencyFacts(const LexResult& lex, ConcurrencyFacts* facts);

/// Phase 2: append R6/R7/R8 violations for one file. `rel_path` drives
/// the R7 directory scope; `file` is the path recorded on violations.
void CheckConcurrency(const std::string& rel_path, const LexResult& lex,
                      const ConcurrencyFacts& facts,
                      std::vector<Violation>* out);

}  // namespace ppslint
