// Focused C++ tokenizer for ppslint (tools/ppslint/README in DESIGN.md §10).
//
// Not a compiler front end: it produces exactly what the privacy rules
// need — identifiers, punctuation, literals, line numbers — plus two side
// channels the rules consume separately:
//
//   * comments, so `// ppslint:allow(RULE-ID reason)` suppressions can be
//     parsed with their anchor line;
//   * #include directives, so the analyzer can build the include graph
//     (rule R5 rejects cycles).
//
// Preprocessor directive bodies (incl. multi-line #define continuations)
// are deliberately NOT tokenized into the main stream: rules fire on use
// sites, not on macro definitions, and skipping them keeps the statement
// splitter sane. String/char literals survive as single tokens so secret
// identifiers inside quotes (log messages, key names) never false-match.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ppslint {

enum class TokenKind {
  kIdentifier,
  kNumber,
  kString,
  kChar,
  kPunct,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
};

struct Comment {
  std::string text;  // without the // or /* */ markers
  int line;          // line the comment starts on
  bool owns_line;    // nothing but whitespace precedes it on its line
};

struct IncludeDirective {
  std::string path;  // between the quotes/brackets
  int line;
  bool angled;  // <...> (system) vs "..." (project)
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

/// Tokenizes `source`. Never fails: unrecognized bytes become single-char
/// punctuation tokens, and an unterminated literal runs to end of file.
LexResult Lex(const std::string& source);

}  // namespace ppslint
