#include "ppslint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "concurrency.h"
#include "lexer.h"

namespace fs = std::filesystem;

namespace ppslint {
namespace {

// ---------------------------------------------------------------------------
// Configuration: the secret-tag list and rule scopes (DESIGN.md §10).
// Matching is exact-identifier, so a tag never fires inside a string
// literal or a longer name.

// Types whose instances hold data that must never cross the transport
// boundary or reach a log: decryption material, CSPRNG state, permutation
// (obfuscation) state, precomputed Paillier randomizers.
const std::unordered_set<std::string>& SecretTypes() {
  static const std::unordered_set<std::string> kSet = {
      "PaillierPrivateKey", "PaillierKeyPair", "SecretKey",
      "SecureRng",          "RandomizerPool",  "Permutation",
  };
  return kSet;
}

// Variable / member spellings the tree uses for the same material. A
// rename that drops the tag is exactly the regression a reviewer should
// see in the diff of this list.
const std::unordered_set<std::string>& SecretValues() {
  static const std::unordered_set<std::string> kSet = {
      "private_key", "secret_key",  "keys_",        "permutation",
      "permutations_", "map_",      "obf_rng_",     "enc_pool_",
      "rerand_pool_", "randomizer", "randomizers",  "rn",
      "decrypted",   "decrypted_view", "plaintext",
  };
  return kSet;
}

bool IsSecretTag(const std::string& ident) {
  return SecretTypes().count(ident) > 0 || SecretValues().count(ident) > 0;
}

// R1 sinks: a statement that calls one of these is serializing or framing
// bytes that are headed for a channel.
const std::unordered_set<std::string>& SinkCalls() {
  static const std::unordered_set<std::string> kSet = {
      "Serialize",   "WriteBytes",  "WriteString",   "WriteU8",
      "WriteU32",    "WriteU64",    "WriteI64",      "WriteDouble",
      "WriteDoubles", "WriteCiphertexts", "Send",    "SendFrame",
      "EncodeFrame", "EncodeFrameWithTrace", "MakeRequestFrame",
      "MakeResponseFrame",
  };
  return kSet;
}

// R1 allowlist: audited (file, method) pairs that may touch both secret
// tags and sinks. "*" matches every method in the file. Keep this list
// short and reviewed — it IS the privacy boundary.
const std::vector<std::pair<std::string, std::string>>& R1Allowlist() {
  static const std::vector<std::pair<std::string, std::string>> kList = {
      // The frame codec itself: builds/parses headers, never sees key or
      // permutation material (audited in PR 2's frame-inspection tests).
      {"src/net/wire.cc", "EncodeFrame"},
      {"src/net/wire.cc", "EncodeFrameWithTrace"},
      {"src/net/wire.cc", "MakeRequestFrame"},
      {"src/net/wire.cc", "MakeResponseFrame"},
      {"src/net/wire.cc", "DecodeFrameHeader"},
      {"src/net/wire.cc", "DecodeFrame"},
  };
  return kList;
}

// R2: directories where only SecureRng / RandomizerPool may produce
// randomness, and the identifiers that are banned there.
const std::vector<std::string>& EntropyScopes() {
  static const std::vector<std::string> kScopes = {"src/crypto/", "src/core/",
                                                   "src/mpc/"};
  return kScopes;
}

// Banned when called: weak libc sources and seeding clocks.
const std::unordered_set<std::string>& BannedEntropyCalls() {
  static const std::unordered_set<std::string> kSet = {
      "rand", "srand", "random", "srandom", "drand48", "lrand48", "time",
  };
  return kSet;
}

// Banned on sight: std <random> engines and the device (std::random_device
// is OS entropy, but all OS entropy must be drawn through
// SecureRng::FromEntropy so key material never touches an engine whose
// state could be logged or serialized).
const std::unordered_set<std::string>& BannedEntropyTypes() {
  static const std::unordered_set<std::string> kSet = {
      "mt19937",        "mt19937_64", "minstd_rand", "minstd_rand0",
      "random_device",  "default_random_engine", "ranlux24", "ranlux48",
      "knuth_b",
  };
  return kSet;
}

// R4: scopes where comparisons on secret-tagged state must be constant
// time. src/bignum is excluded by design: BigInt arithmetic is not
// constant-time (documented), and the protocol's security argument does
// not rest on it — R4 polices the *buffer* comparisons (keys, digests,
// permutation state) where a timing oracle is cheap to exploit.
const std::vector<std::string>& VartimeScopes() {
  static const std::vector<std::string> kScopes = {"src/crypto/", "src/core/",
                                                   "src/mpc/"};
  return kScopes;
}

const char* kBignumScope = "src/bignum/";

bool InScope(const std::string& rel_path,
             const std::vector<std::string>& scopes) {
  for (const auto& s : scopes) {
    if (rel_path.rfind(s, 0) == 0) return true;
  }
  return false;
}

bool IsControlKeyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" ||
         t == "catch" || t == "return" || t == "sizeof";
}

// ---------------------------------------------------------------------------
// Per-file scan state.

struct FileScan {
  std::string rel_path;
  LexResult lex;
  std::vector<Suppression> suppressions;
  std::vector<Violation> violations;
};

void AddViolation(FileScan* scan, int line, RuleId rule, std::string message) {
  scan->violations.push_back(
      Violation{scan->rel_path, line, rule, std::move(message)});
}

// Parses `ppslint:allow(R-ID reason)` comments. A comment that owns its
// line waives the next code line; an end-of-line comment waives its own.
void ParseSuppressions(FileScan* scan) {
  for (const Comment& c : scan->lex.comments) {
    size_t pos = c.text.find("ppslint:allow(");
    if (pos == std::string::npos) continue;
    pos += std::char_traits<char>::length("ppslint:allow(");
    const size_t close = c.text.find(')', pos);
    if (close == std::string::npos) continue;
    std::string body = c.text.substr(pos, close - pos);
    const size_t space = body.find(' ');
    const std::string id = body.substr(0, space);
    std::string reason =
        space == std::string::npos ? "" : body.substr(space + 1);
    RuleId rule;
    if (id == "R1") rule = RuleId::kR1;
    else if (id == "R2") rule = RuleId::kR2;
    else if (id == "R3") rule = RuleId::kR3;
    else if (id == "R4") rule = RuleId::kR4;
    else if (id == "R5") rule = RuleId::kR5;
    else if (id == "R6") rule = RuleId::kR6;
    else if (id == "R7") rule = RuleId::kR7;
    else if (id == "R8") rule = RuleId::kR8;
    else {
      AddViolation(scan, c.line, RuleId::kR5,
                   "malformed suppression: unknown rule id '" + id +
                       "' in ppslint:allow()");
      continue;
    }
    int target = c.line;
    if (c.owns_line) {
      // Waive the first code line after the comment.
      target = c.line + 1;
      for (const Token& t : scan->lex.tokens) {
        if (t.line > c.line) {
          target = t.line;
          break;
        }
      }
    }
    scan->suppressions.push_back(
        Suppression{scan->rel_path, c.line, target, rule, std::move(reason),
                    /*used=*/false});
  }
}

// ---------------------------------------------------------------------------
// Statement iteration with enclosing-function tracking.
//
// A "statement" is a maximal token run between ';' '{' '}' delimiters —
// exactly the granularity the tag/sink co-occurrence rules need. The
// tracker infers a function name when a '{' opens a body that follows a
// parameter list, which is what the R1 allowlist matches against.

struct Statement {
  size_t begin = 0, end = 0;  // token range [begin, end)
  std::string enclosing_function;
};

std::vector<Statement> SplitStatements(const std::vector<Token>& toks) {
  std::vector<Statement> out;
  std::vector<std::string> func_stack;
  size_t stmt_begin = 0;

  auto innermost_function = [&]() -> std::string {
    for (auto it = func_stack.rbegin(); it != func_stack.rend(); ++it) {
      if (!it->empty()) return *it;
    }
    return "";
  };

  auto infer_function_name = [&](size_t open_brace) -> std::string {
    if (open_brace == 0) return "";
    size_t j = open_brace - 1;
    // Skip trailing qualifiers between ')' and '{'.
    while (j > stmt_begin && toks[j].kind == TokenKind::kIdentifier &&
           (toks[j].text == "const" || toks[j].text == "noexcept" ||
            toks[j].text == "override" || toks[j].text == "final" ||
            toks[j].text == "mutable")) {
      --j;
    }
    if (toks[j].kind != TokenKind::kPunct || toks[j].text != ")") return "";
    int depth = 1;
    while (j > stmt_begin && depth > 0) {
      --j;
      if (toks[j].kind != TokenKind::kPunct) continue;
      if (toks[j].text == ")") ++depth;
      else if (toks[j].text == "(") --depth;
    }
    if (depth != 0 || j == 0) return "";
    const Token& name = toks[j - 1];
    if (name.kind != TokenKind::kIdentifier || IsControlKeyword(name.text))
      return "";
    return name.text;
  };

  // `attribute_to` lets a function signature statement count as part of
  // the function it opens (the allowlist must cover the declaration too).
  auto flush = [&](size_t end, const std::string& attribute_to = "") {
    if (end > stmt_begin) {
      out.push_back(Statement{
          stmt_begin, end,
          attribute_to.empty() ? innermost_function() : attribute_to});
    }
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "{") {
      std::string name = infer_function_name(i);
      flush(i, name);
      func_stack.push_back(std::move(name));
      stmt_begin = i + 1;
    } else if (toks[i].text == "}") {
      flush(i);
      if (!func_stack.empty()) func_stack.pop_back();
      stmt_begin = i + 1;
    } else if (toks[i].text == ";") {
      flush(i);
      stmt_begin = i + 1;
    }
  }
  // Trailing run (should be empty in well-formed files).
  if (stmt_begin < toks.size()) {
    out.push_back(Statement{stmt_begin, toks.size(), ""});
  }
  return out;
}

bool IsCall(const std::vector<Token>& toks, size_t i) {
  return toks[i].kind == TokenKind::kIdentifier && i + 1 < toks.size() &&
         toks[i + 1].kind == TokenKind::kPunct && toks[i + 1].text == "(";
}

// ---------------------------------------------------------------------------
// R1 privacy-boundary.

bool R1Allowed(const std::string& rel_path, const std::string& function) {
  for (const auto& [file, fn] : R1Allowlist()) {
    if (rel_path == file && (fn == "*" || fn == function)) return true;
  }
  return false;
}

void CheckR1(FileScan* scan, const std::vector<Statement>& stmts) {
  const auto& toks = scan->lex.tokens;
  for (const Statement& s : stmts) {
    const Token* sink = nullptr;
    const Token* secret = nullptr;
    for (size_t i = s.begin; i < s.end; ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      if (!sink && SinkCalls().count(toks[i].text) && IsCall(toks, i)) {
        sink = &toks[i];
      }
      if (!secret && IsSecretTag(toks[i].text)) secret = &toks[i];
      if (sink && secret) break;
    }
    if (!sink || !secret) continue;
    if (R1Allowed(scan->rel_path, s.enclosing_function)) continue;
    AddViolation(scan, sink->line, RuleId::kR1,
                 "secret-tagged '" + secret->text +
                     "' reaches serialization/frame sink '" + sink->text +
                     "()' outside the audited allowlist");
  }
}

// ---------------------------------------------------------------------------
// R2 entropy hygiene.

void CheckR2(FileScan* scan) {
  if (!InScope(scan->rel_path, EntropyScopes())) return;
  const auto& toks = scan->lex.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    if (BannedEntropyTypes().count(toks[i].text)) {
      AddViolation(scan, toks[i].line, RuleId::kR2,
                   "'" + toks[i].text +
                       "' is banned here: randomness in crypto/core/mpc "
                       "must come from SecureRng or RandomizerPool");
    } else if (BannedEntropyCalls().count(toks[i].text) && IsCall(toks, i)) {
      // The ban targets the libc free functions; skip member calls
      // (foo.time(), obj->rand()), declarations (`int rand() const`,
      // preceded by a type or declarator), and qualified members of other
      // classes (Sampler::rand()). std:: and ::-global stay banned.
      if (i > 0) {
        const Token& prev = toks[i - 1];
        if (prev.kind == TokenKind::kPunct &&
            (prev.text == "." || prev.text == "->")) {
          continue;
        }
        if (prev.kind == TokenKind::kIdentifier && prev.text != "return") {
          continue;  // `int rand(...)` — a declaration, not a call
        }
        if (prev.kind == TokenKind::kPunct &&
            (prev.text == "*" || prev.text == "&")) {
          continue;  // declarator
        }
        if (prev.kind == TokenKind::kPunct && prev.text == "::" && i > 1 &&
            toks[i - 2].kind == TokenKind::kIdentifier &&
            toks[i - 2].text != "std") {
          continue;  // SomeClass::rand() — not libc
        }
      }
      AddViolation(scan, toks[i].line, RuleId::kR2,
                   "call to '" + toks[i].text +
                       "()' is banned here: randomness/seeds in "
                       "crypto/core/mpc must come from SecureRng or "
                       "RandomizerPool");
    }
  }
}

// ---------------------------------------------------------------------------
// R3 secret logging.

void CheckR3(FileScan* scan, const std::vector<Statement>& stmts) {
  const auto& toks = scan->lex.tokens;
  for (const Statement& s : stmts) {
    bool has_log = false;
    for (size_t i = s.begin; i < s.end && !has_log; ++i) {
      has_log = toks[i].kind == TokenKind::kIdentifier &&
                (toks[i].text == "PPS_SLOG" || toks[i].text == "PPS_LOG");
    }
    if (!has_log) continue;
    for (size_t i = s.begin; i < s.end; ++i) {
      if (toks[i].kind == TokenKind::kIdentifier && IsSecretTag(toks[i].text)) {
        AddViolation(scan, toks[i].line, RuleId::kR3,
                     "secret-tagged '" + toks[i].text +
                         "' appears in a log statement");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R4 variable-time comparisons.

void CheckR4(FileScan* scan, const std::vector<Statement>& stmts) {
  if (!InScope(scan->rel_path, VartimeScopes())) return;
  const auto& toks = scan->lex.tokens;
  for (const Statement& s : stmts) {
    for (size_t i = s.begin; i < s.end; ++i) {
      if (toks[i].kind == TokenKind::kIdentifier && toks[i].text == "memcmp" &&
          IsCall(toks, i)) {
        AddViolation(scan, toks[i].line, RuleId::kR4,
                     "memcmp() in a secret-handling scope is variable-time; "
                     "use ConstantTimeEquals (src/crypto/constant_time.h)");
        continue;
      }
      if (toks[i].kind != TokenKind::kPunct ||
          (toks[i].text != "==" && toks[i].text != "!=")) {
        continue;
      }
      // Flag when an operand directly adjacent to the comparison is a
      // secret tag (e.g. `map_ == o.map_`).
      const Token* operand = nullptr;
      bool tagged_left = false;
      if (i > s.begin && toks[i - 1].kind == TokenKind::kIdentifier &&
          IsSecretTag(toks[i - 1].text)) {
        operand = &toks[i - 1];
        tagged_left = true;
      } else if (i + 1 < s.end && toks[i + 1].kind == TokenKind::kIdentifier &&
                 IsSecretTag(toks[i + 1].text)) {
        operand = &toks[i + 1];
      }
      if (!operand) continue;
      // Presence checks compare a pointer, not secret contents.
      const size_t other = tagged_left ? i + 1 : i - 1;
      if (other >= s.begin && other < s.end &&
          (toks[other].text == "nullptr" || toks[other].text == "NULL")) {
        continue;
      }
      // Container-position probes (`permutations_.find(k) == permutations_
      // .end()`) leak only which request has live state, which the server
      // already exposes; skip when the tagged operand is the container of
      // a positional accessor.
      if (!tagged_left && i + 3 < s.end &&
          toks[i + 2].kind == TokenKind::kPunct &&
          (toks[i + 2].text == "." || toks[i + 2].text == "->") &&
          toks[i + 3].kind == TokenKind::kIdentifier &&
          (toks[i + 3].text == "end" || toks[i + 3].text == "begin" ||
           toks[i + 3].text == "cend" || toks[i + 3].text == "cbegin")) {
        continue;
      }
      AddViolation(scan, toks[i].line, RuleId::kR4,
                   "variable-time '" + toks[i].text + "' on secret-tagged '" +
                       operand->text +
                       "'; use ConstantTimeEquals "
                       "(src/crypto/constant_time.h)");
    }
  }
}

// ---------------------------------------------------------------------------
// R5 banned constructs (per-file part): raw new/delete, error-dropping
// catch (...). Include cycles are checked across files in AnalyzeFiles.

void CheckR5(FileScan* scan) {
  const auto& toks = scan->lex.tokens;
  const bool in_bignum = scan->rel_path.rfind(kBignumScope, 0) == 0;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    if (!in_bignum && (toks[i].text == "new" || toks[i].text == "delete")) {
      // `= delete` (deleted member) and `= default` are declarations, not
      // deallocations.
      const bool deleted_fn = toks[i].text == "delete" && i > 0 &&
                              toks[i - 1].kind == TokenKind::kPunct &&
                              toks[i - 1].text == "=";
      if (deleted_fn) continue;
      AddViolation(scan, toks[i].line, RuleId::kR5,
                   "raw '" + toks[i].text +
                       "' outside src/bignum; use std::make_unique / "
                       "std::make_shared or a container");
    }
    if (toks[i].text == "catch" && i + 3 < toks.size() &&
        toks[i + 1].text == "(" && toks[i + 2].text == "..." &&
        toks[i + 3].text == ")") {
      // Find the handler body and require a rethrow.
      size_t j = i + 4;
      while (j < toks.size() && toks[j].text != "{") ++j;
      int depth = 0;
      bool rethrows = false;
      for (; j < toks.size(); ++j) {
        if (toks[j].kind == TokenKind::kPunct && toks[j].text == "{") ++depth;
        else if (toks[j].kind == TokenKind::kPunct && toks[j].text == "}") {
          if (--depth == 0) break;
        } else if (toks[j].kind == TokenKind::kIdentifier &&
                   toks[j].text == "throw") {
          rethrows = true;
        }
      }
      if (!rethrows) {
        AddViolation(scan, toks[i].line, RuleId::kR5,
                     "catch (...) swallows the error; rethrow, convert to "
                     "Status, or ppslint:allow(R5 ...) with a reason");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver plumbing.

FileScan ScanFile(const std::string& rel_path, const std::string& content) {
  FileScan scan;
  scan.rel_path = rel_path;
  scan.lex = Lex(content);
  ParseSuppressions(&scan);
  const std::vector<Statement> stmts = SplitStatements(scan.lex.tokens);
  CheckR1(&scan, stmts);
  CheckR2(&scan);
  CheckR3(&scan, stmts);
  CheckR4(&scan, stmts);
  CheckR5(&scan);
  return scan;
}

// Applies the file's suppressions to its violations and appends the
// remainder (plus all suppressions) to `report`.
void Finalize(FileScan scan, Report* report) {
  for (Violation& v : scan.violations) {
    bool suppressed = false;
    for (Suppression& s : scan.suppressions) {
      if (s.rule == v.rule && s.target_line == v.line) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) report->violations.push_back(std::move(v));
  }
  for (Suppression& s : scan.suppressions) {
    report->suppressions.push_back(std::move(s));
  }
  ++report->files_scanned;
}

std::string ReadFileOrEmpty(const fs::path& p, bool* ok) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    *ok = false;
    return "";
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return std::move(ss).str();
}

// Resolves a quoted include against the including file's directory, then
// the configured include roots. Returns a root-relative path or "" when
// the target is not part of the project.
std::string ResolveInclude(const Options& opts, const std::string& from_rel,
                           const std::string& inc_path) {
  const fs::path root(opts.root);
  std::vector<fs::path> candidates;
  candidates.push_back(fs::path(from_rel).parent_path() / inc_path);
  for (const auto& ir : opts.include_roots) {
    candidates.push_back(fs::path(ir) / inc_path);
  }
  for (const fs::path& rel : candidates) {
    const fs::path norm = rel.lexically_normal();
    if (fs::exists(root / norm)) return norm.generic_string();
  }
  return "";
}

// Depth-first search for include cycles; each distinct cycle is reported
// once, anchored at the include directive that closes it.
struct IncludeGraph {
  struct Edge {
    std::string to;
    int line;
  };
  std::map<std::string, std::vector<Edge>> adj;
};

void FindCycles(const IncludeGraph& graph,
                std::map<std::string, FileScan>* scans) {
  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;
  std::set<std::string> reported;  // canonical cycle keys

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = Color::kGray;
    stack.push_back(node);
    auto it = graph.adj.find(node);
    if (it != graph.adj.end()) {
      for (const IncludeGraph::Edge& e : it->second) {
        if (color[e.to] == Color::kGray) {
          // Extract the cycle node -> ... -> e.to -> node.
          auto start = std::find(stack.begin(), stack.end(), e.to);
          std::vector<std::string> cycle(start, stack.end());
          std::vector<std::string> key = cycle;
          std::sort(key.begin(), key.end());
          std::string canon;
          for (const auto& k : key) canon += k + "|";
          if (reported.insert(canon).second) {
            std::string path;
            for (const auto& n : cycle) path += n + " -> ";
            path += e.to;
            auto scan_it = scans->find(node);
            if (scan_it != scans->end()) {
              AddViolation(&scan_it->second, e.line, RuleId::kR5,
                           "#include cycle: " + path);
            }
          }
        } else if (color[e.to] == Color::kWhite) {
          dfs(e.to);
        }
      }
    }
    stack.pop_back();
    color[node] = Color::kBlack;
  };

  for (const auto& [node, _] : graph.adj) {
    if (color[node] == Color::kWhite) dfs(node);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.

const std::vector<RuleId>& AllRules() {
  static const std::vector<RuleId> kAll = {
      RuleId::kR1, RuleId::kR2, RuleId::kR3, RuleId::kR4,
      RuleId::kR5, RuleId::kR6, RuleId::kR7, RuleId::kR8,
  };
  return kAll;
}

const char* RuleIdName(RuleId id) {
  switch (id) {
    case RuleId::kR1: return "R1";
    case RuleId::kR2: return "R2";
    case RuleId::kR3: return "R3";
    case RuleId::kR4: return "R4";
    case RuleId::kR5: return "R5";
    case RuleId::kR6: return "R6";
    case RuleId::kR7: return "R7";
    case RuleId::kR8: return "R8";
  }
  return "R?";
}

const char* RuleIdDescription(RuleId id) {
  switch (id) {
    case RuleId::kR1:
      return "privacy-boundary: secret-tagged data must not reach "
             "serialization/frame sinks outside the audited allowlist";
    case RuleId::kR2:
      return "entropy-hygiene: only SecureRng/RandomizerPool may produce "
             "randomness in src/crypto, src/core, src/mpc";
    case RuleId::kR3:
      return "secret-logging: secret-tagged identifiers must not appear in "
             "PPS_SLOG/PPS_LOG statements";
    case RuleId::kR4:
      return "variable-time: comparisons on secret state must use "
             "ConstantTimeEquals";
    case RuleId::kR5:
      return "banned-constructs: raw new/delete outside src/bignum, "
             "error-swallowing catch (...), #include cycles";
    case RuleId::kR6:
      return "lock-discipline: PPS_GUARDED_BY fields only touched under "
             "the named mutex or inside PPS_REQUIRES methods";
    case RuleId::kR7:
      return "atomics-hygiene: explicit memory orders in src/net, src/obs, "
             "src/stream; CAS-owned fields publish with release";
    case RuleId::kR8:
      return "blocking-under-lock: no socket I/O, sleeps, joins, or cv "
             "waits on foreign locks while holding a mutex";
  }
  return "";
}

const char* RuleIdExplanation(RuleId id) {
  switch (id) {
    case RuleId::kR1:
      return "Secret-tagged values (keys, permutations, randomizers,\n"
             "decrypted views) must never co-occur with a serialization or\n"
             "frame-send sink outside the audited src/net/wire.cc boundary.\n"
             "Encodes the paper's core privacy claim: the provider sees only\n"
             "obfuscated streams, so the one place bytes are framed for the\n"
             "wire is the one place leakage could happen silently.\n";
    case RuleId::kR2:
      return "Randomness in src/crypto, src/core, src/mpc must come from\n"
             "SecureRng or RandomizerPool. A std::mt19937 seeded from\n"
             "time() has a tiny effective seed space: every 'randomized'\n"
             "obfuscation stream drawn from it would be replayable offline,\n"
             "which is the attack the paper's randomization defeats.\n";
    case RuleId::kR3:
      return "Secret-tagged identifiers must not appear in PPS_SLOG /\n"
             "PPS_LOG statements. Logs outlive processes, get shipped to\n"
             "aggregators, and are exactly the side channel the threat\n"
             "model assumes the provider can read.\n";
    case RuleId::kR4:
      return "Comparisons over secret buffers in crypto scopes must use\n"
             "ConstantTimeEquals: memcmp and operator== short-circuit on\n"
             "the first differing byte, turning response latency into a\n"
             "byte-by-byte oracle on key and permutation material.\n";
    case RuleId::kR5:
      return "Raw new/delete outside src/bignum, error-swallowing\n"
             "catch (...), and #include cycles are banned tree-wide —\n"
             "ownership bugs, silent failures, and layering rot all\n"
             "surfaced as review comments often enough to automate.\n";
    case RuleId::kR6:
      return "Every access to a PPS_GUARDED_BY(m) field must sit lexically\n"
             "inside a std::lock_guard/std::unique_lock scope naming m, or\n"
             "in a method annotated PPS_REQUIRES(m); classes with guarded\n"
             "members may not carry un-annotated mutable siblings, and\n"
             "PPS_EXCLUDES(m) functions must not be called with m held\n"
             "(self-deadlock). Historical bug: the PR 9 session attach race\n"
             "— ServerSession reply state was written outside the registry\n"
             "lock on the resume path, visible only under a concurrent\n"
             "resume storm, found by human review after TSan missed it.\n"
             "Under Clang with an annotated libc++ the same macros expand\n"
             "to thread-safety attributes, so -Wthread-safety checks the\n"
             "discipline flow-sensitively on that CI leg.\n";
    case RuleId::kR7:
      return "In src/net, src/obs, src/stream every .load()/.store()/\n"
             "fetch_* must spell its memory order; a store with\n"
             "memory_order_relaxed to a field that is a compare_exchange\n"
             "target elsewhere is flagged (CAS-owned fields publish with\n"
             "release or stronger); and a CAS-owned atomic may not share a\n"
             "class with non-atomic members unless they are marked\n"
             "PPS_CAS_GUARDED_BY. Historical bug: the flight-recorder slot\n"
             "interleave — the seqlock's version word was reset with a\n"
             "relaxed store, letting a reader observe a half-written slot\n"
             "as consistent after Reset().\n";
    case RuleId::kR8:
      return "No blocking call — socket send/recv/accept/connect, poll,\n"
             "sleeps, thread joins, or condition-variable waits on a\n"
             "foreign lock — while lexically holding a mutex. The taint is\n"
             "transitive within a translation unit: a helper that blocks\n"
             "makes every locked caller a violation. Historical bug: the\n"
             "trickling-client starvation — the admin responder read a\n"
             "request byte-by-byte on the accept thread, so one slow\n"
             "client could park /healthz behind a socket read until the\n"
             "per-connection deadline was added.\n";
  }
  return "";
}

size_t Report::used_suppression_count() const {
  size_t n = 0;
  for (const Suppression& s : suppressions) n += s.used ? 1 : 0;
  return n;
}

std::vector<const Suppression*> Report::unused_suppressions() const {
  std::vector<const Suppression*> out;
  for (const Suppression& s : suppressions) {
    if (!s.used) out.push_back(&s);
  }
  return out;
}

void Report::Merge(Report other) {
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
  suppressions.insert(suppressions.end(),
                      std::make_move_iterator(other.suppressions.begin()),
                      std::make_move_iterator(other.suppressions.end()));
  files_scanned += other.files_scanned;
}

Report AnalyzeSource(const Options& opts, const std::string& rel_path,
                     const std::string& content) {
  (void)opts;
  Report report;
  FileScan scan = ScanFile(rel_path, content);
  // Single-TU concurrency pass: facts come from this file alone.
  ConcurrencyFacts facts;
  CollectConcurrencyFacts(scan.lex, &facts);
  CheckConcurrency(rel_path, scan.lex, facts, &scan.violations);
  Finalize(std::move(scan), &report);
  return report;
}

std::vector<std::string> CollectSourceFiles(
    const Options& opts, const std::vector<std::string>& paths) {
  const fs::path root(opts.root);
  std::vector<std::string> out;
  auto is_source = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
  };
  for (const std::string& p : paths) {
    const fs::path abs = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    if (fs::is_directory(abs)) {
      for (const auto& entry : fs::recursive_directory_iterator(abs)) {
        if (entry.is_regular_file() && is_source(entry.path())) {
          out.push_back(
              fs::path(entry.path()).lexically_relative(root).generic_string());
        }
      }
    } else if (fs::exists(abs) && is_source(abs)) {
      out.push_back(abs.lexically_relative(root).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Report AnalyzeFiles(const Options& opts,
                    const std::vector<std::string>& files) {
  Report report;
  std::map<std::string, FileScan> scans;
  IncludeGraph graph;
  const fs::path root(opts.root);

  for (const std::string& rel : files) {
    bool ok = false;
    const std::string content = ReadFileOrEmpty(root / rel, &ok);
    if (!ok) {
      report.violations.push_back(
          Violation{rel, 0, RuleId::kR5, "unreadable file"});
      continue;
    }
    FileScan scan = ScanFile(rel, content);
    auto& edges = graph.adj[rel];  // ensure node exists even with no edges
    for (const IncludeDirective& inc : scan.lex.includes) {
      if (inc.angled) continue;
      const std::string target = ResolveInclude(opts, rel, inc.path);
      if (!target.empty() && target != rel) {
        edges.push_back(IncludeGraph::Edge{target, inc.line});
      }
    }
    scans.emplace(rel, std::move(scan));
  }

  FindCycles(graph, &scans);

  // Concurrency pass, two phases: annotations live in headers while the
  // accesses live in .cc files, so facts must span the whole scan set
  // before any file is checked.
  ConcurrencyFacts facts;
  for (auto& [rel, scan] : scans) {
    CollectConcurrencyFacts(scan.lex, &facts);
  }
  for (auto& [rel, scan] : scans) {
    CheckConcurrency(rel, scan.lex, facts, &scan.violations);
  }

  for (auto& [rel, scan] : scans) {
    Finalize(std::move(scan), &report);
  }
  std::sort(report.violations.begin(), report.violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
  return report;
}

}  // namespace ppslint
