// Process-level chaos harness for the TCP serving path (DESIGN.md §11).
//
// One binary, two roles:
//
//   chaos_runner [flags]                 orchestrator (the default)
//   chaos_runner --serve <port> <epoch>  server child, exec'd by the
//                                        orchestrator and SIGKILLed at will
//
// The orchestrator launches a real model-provider server as a separate
// process, drives inferences through the session-resuming TCP transport,
// and — at FaultInjector-seeded points in the frame stream — SIGKILLs the
// server mid-inference and immediately respawns a replacement on the same
// port. The in-process chaos tests (tests/net_test.cc) cover socket resets
// and cooperative server swaps; this harness is the uncooperative version:
// a real kernel-delivered SIGKILL, a real half-open TCP connection, a real
// process respawn racing the client's reconnect.
//
// What must hold, or the run fails (exit code 1):
//   * every inference completes bit-exact against RunScaledPlainInference
//     — the protocol output is a pure function of (plan, input), so a
//     restart onto a fresh session (different permutations, different
//     randomizers) must not change a single bit;
//   * the client actually reconnected (channel reconnects >= 1 and the
//     net.reconnects counter agrees) — otherwise no chaos happened and
//     the run proved nothing;
//   * no plaintext input or output bytes ever appeared in an outbound
//     frame payload, reconnects and resumes included;
//   * the flight recorder (obs/flightrec.h) captured the SIGKILLed
//     inference: after a kill scenario completes, the dump written to
//     --flightrec-out must contain spans carrying that inference's
//     request id — proving the black box survives real process chaos.
//
// The run writes a JSON trace (events + a metrics snapshot) for CI
// artifact upload; see --trace-out.

#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/protocol.h"
#include "net/server.h"
#include "net/transport.h"
#include "nn/layers.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/rng.h"

namespace ppstream {
namespace {

// ------------------------------------------------------------ fixed model
//
// Both processes rebuild the same tiny model from the same seeds, so the
// child never needs weights shipped to it and the orchestrator can compute
// the plain reference locally. 256-bit keys keep a sanitized CI run fast;
// key size does not change any of the failure paths under test.

constexpr uint64_t kKeySeed = 7;
constexpr uint64_t kModelSeed = 8;
constexpr int kKeyBits = 256;

std::shared_ptr<const InferencePlan> BuildPlan() {
  Rng mrng(kModelSeed);
  Model model(Shape{4}, "chaos-net");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 6, mrng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 3, mrng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  auto plan = CompilePlan(model, 1000);
  PPS_CHECK(plan.ok()) << plan.status().ToString();
  return std::make_shared<const InferencePlan>(std::move(plan).value());
}

DoubleTensor MakeInput(uint64_t seed) {
  Rng rng(seed);
  DoubleTensor x{Shape{4}};
  for (int64_t j = 0; j < 4; ++j) x[j] = rng.NextUniform(-2, 2);
  return x;
}

// ------------------------------------------------------------ server child

ModelProviderTcpServer* g_server = nullptr;

extern "C" void ChaosServerSigterm(int) {
  // BeginDrain is async-signal-safe by contract (net/server.h).
  if (g_server != nullptr) g_server->BeginDrain(0.5);
}

// `--serve <port> <epoch>`: serve the deterministic plan on `port` until
// SIGTERM (graceful drain) or SIGKILL (the whole point). `epoch` varies
// the obfuscation seed so a respawned server picks different permutation
// streams — the bit-exactness assertion then proves restart recovery does
// not depend on the replacement making the same random choices.
int RunServerChild(uint16_t port, uint64_t epoch) {
  auto plan = BuildPlan();
  ModelProviderServerOptions options;
  options.obf_seed = 0x0BF5EEDULL + epoch * 0x10000ULL;
  options.io_timeout_seconds = 30.0;
  ModelProviderTcpServer server(plan, options);
  g_server = &server;
  std::signal(SIGTERM, ChaosServerSigterm);

  // The predecessor was SIGKILLed moments ago; even with SO_REUSEADDR a
  // bind can transiently lose the race with the kernel tearing the old
  // socket down, so retry briefly instead of dying.
  Status listening = Status::Unavailable("never tried");
  for (int attempt = 0; attempt < 40; ++attempt) {
    listening = server.Listen(port);
    if (listening.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!listening.ok()) {
    std::fprintf(stderr, "chaos child: bind failed: %s\n",
                 listening.ToString().c_str());
    return 1;
  }
  const Status served = server.Serve();
  if (!served.ok()) {
    std::fprintf(stderr, "chaos child: serve failed: %s\n",
                 served.ToString().c_str());
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------ orchestrator

struct ChaosOptions {
  int inferences = 5;
  int min_kills = 1;
  uint64_t seed = 0xC4A05ULL;
  /// Per-outbound-frame probability that the server is SIGKILLed before
  /// the frame is sent (FaultInjector site "chaos.kill").
  double kill_probability = 0.05;
  /// Also inject net.sock.reset/stall/truncate on the client channel, so
  /// process death and socket-level chaos overlap.
  bool socket_faults = false;
  std::string trace_out;
  /// Flight-recorder dump target; the post-kill assertion reads it back.
  std::string flightrec_out = "chaos_flightrec.json";
};

struct ChaosEvent {
  double at_seconds;
  std::string kind;
  std::string detail;
};

class ChaosRun {
 public:
  ChaosRun(ChaosOptions options, std::string self_exe)
      : options_(options), self_exe_(std::move(self_exe)) {}

  int Run();

 private:
  void Record(const std::string& kind, const std::string& detail) {
    events_.push_back({obs::MonotonicSeconds() - start_seconds_, kind,
                       detail});
    std::printf("[chaos %7.3fs] %-10s %s\n", events_.back().at_seconds,
                kind.c_str(), detail.c_str());
  }

  /// fork + execv of our own binary in --serve mode. execv immediately
  /// after fork keeps this safe in a multi-threaded (and sanitized)
  /// parent.
  bool SpawnServer();
  void KillServer();
  /// SIGKILL the current server and start its replacement (next epoch).
  void KillAndRespawn(const char* why);

  bool WriteTrace(bool ok) const;

  const ChaosOptions options_;
  const std::string self_exe_;

  uint16_t port_ = 0;
  pid_t server_pid_ = -1;
  uint64_t epoch_ = 0;
  int kills_ = 0;
  /// Request in flight (or about to start) when the last kill happened.
  uint64_t current_request_id_ = 0;
  uint64_t killed_request_id_ = 0;
  double start_seconds_ = 0;
  std::vector<ChaosEvent> events_;
  std::vector<std::string> failures_;
};

bool ChaosRun::SpawnServer() {
  const std::string port_str = std::to_string(port_);
  const std::string epoch_str = std::to_string(epoch_);
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    // Child: become the server. execv of /proc/self/exe rather than
    // calling RunServerChild directly — the parent is multi-threaded by
    // now, and only exec resets the child to a sane single-threaded world.
    const char* argv[] = {self_exe_.c_str(), "--serve", port_str.c_str(),
                          epoch_str.c_str(), nullptr};
    ::execv(self_exe_.c_str(), const_cast<char* const*>(argv));
    std::perror("execv");
    _exit(127);
  }
  server_pid_ = pid;
  Record("spawn", "server pid " + std::to_string(pid) + " epoch " +
                      epoch_str + " port " + port_str);
  return true;
}

void ChaosRun::KillServer() {
  if (server_pid_ <= 0) return;
  ::kill(server_pid_, SIGKILL);
  int status = 0;
  ::waitpid(server_pid_, &status, 0);
  server_pid_ = -1;
}

void ChaosRun::KillAndRespawn(const char* why) {
  ++kills_;
  killed_request_id_ = current_request_id_;
  obs::FlightRecorder::Global().RecordEvent("chaos.kill", why,
                                            current_request_id_);
  Record("kill", std::string("SIGKILL server pid ") +
                     std::to_string(server_pid_) + " (" + why + ")");
  KillServer();
  ++epoch_;
  PPS_CHECK(SpawnServer()) << "could not respawn the chaos server";
}

int ChaosRun::Run() {
  start_seconds_ = obs::MonotonicSeconds();

  // Arm the black box: spans and events of every inference land in the
  // ring, and kill scenarios dump it for the post-run assertion.
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.SetEnabled(true);
  if (!options_.flightrec_out.empty()) {
    recorder.SetDumpPath(options_.flightrec_out);
  }

  // Generate keys and the plain reference before any process chaos.
  Rng krng(kKeySeed);
  auto pair = Paillier::GenerateKeyPair(kKeyBits, krng);
  PPS_CHECK(pair.ok()) << pair.status().ToString();
  const PaillierKeyPair keys = std::move(pair).value();
  auto plan = BuildPlan();

  // Pick a free port by binding an ephemeral listener and releasing it.
  // The tiny race with another process is acceptable for a test harness
  // (the child retries its bind; a hard conflict fails the run loudly).
  {
    auto probe = TcpListener::Bind(0);
    PPS_CHECK(probe.ok()) << probe.status().ToString();
    port_ = probe->port();
  }

  if (!SpawnServer()) return 1;

  // Dial with a patient retry policy: the child has to exec and bind
  // first, and respawns race the reconnect the same way.
  TcpTransportOptions topts;
  topts.connect_retry = {.max_retries = 40,
                         .initial_backoff_seconds = 0.05,
                         .max_backoff_seconds = 0.25,
                         .deadline_seconds = 15.0};
  topts.reconnect_retry = {.max_retries = 6,
                           .initial_backoff_seconds = 0.05,
                           .max_backoff_seconds = 0.5};
  auto transport =
      TcpTransport::Connect("127.0.0.1", port_, keys.public_key, topts);
  if (!transport.ok()) {
    std::fprintf(stderr, "chaos: connect failed: %s\n",
                 transport.status().ToString().c_str());
    KillServer();
    return 1;
  }
  auto* channel =
      dynamic_cast<ResilientTcpChannel*>(&transport.value()->channel());
  PPS_CHECK(channel != nullptr)
      << "chaos needs the session-resuming channel";
  Record("connect", "session " + std::to_string(channel->session_id()));

  // The kill coin: every outbound frame probes "chaos.kill"; when the
  // rule fires, the server dies by SIGKILL before the frame hits the
  // wire, and a replacement is spawned immediately — so the client's very
  // next write or read meets a dead connection mid-inference.
  auto injector = std::make_shared<FaultInjector>(options_.seed);
  {
    FaultRule kill_rule;
    kill_rule.site_pattern = "chaos.kill";
    kill_rule.kind = FaultKind::kError;
    kill_rule.probability = options_.kill_probability;
    injector->AddRule(kill_rule);
  }
  if (options_.socket_faults) {
    FaultRule reset;
    reset.site_pattern = "net.sock.reset";
    reset.kind = FaultKind::kError;
    reset.error_code = StatusCode::kIoError;
    reset.probability = 0.05;
    injector->AddRule(reset);
    FaultRule stall;
    stall.site_pattern = "net.sock.stall";
    stall.kind = FaultKind::kLatency;
    stall.latency_seconds = 0.05;
    stall.probability = 0.05;
    injector->AddRule(stall);
    transport.value()->channel().SetFaultInjector(injector);
  }

  // Privacy watch: capture outbound payloads; scanned after each
  // inference for the raw little-endian bytes of every input/output
  // double. The observer also flips the kill coin — it runs before the
  // frame is transmitted, which is exactly when we want the server dead.
  std::vector<std::vector<uint8_t>> outbound_payloads;
  transport.value()->channel().SetFrameObserver(
      [&](const WireFrame& frame, bool out) {
        if (!out) return;
        outbound_payloads.push_back(frame.payload);
        if (frame.method == WireMethod::kPing) return;
        if (!injector->Fail("chaos.kill").ok()) {
          KillAndRespawn("coin");
        }
      });

  DataProvider dp(transport.value()->view_plan(), keys, 0xD4717ULL);
  ModelProviderApi& mp = *transport.value()->model_provider();

  ResilientInferenceOptions ropts;
  ropts.restart = {.max_retries = 6,
                   .initial_backoff_seconds = 0.05,
                   .max_backoff_seconds = 0.5};
  ropts.deadline_seconds = 60.0;

  obs::Counter* reconnects =
      obs::MetricsRegistry::Global().GetCounter("net.reconnects");

  bool ok = true;
  for (int i = 0; i < options_.inferences; ++i) {
    current_request_id_ = static_cast<uint64_t>(i) + 1;
    // If the coin has been cold, force the guaranteed kills at inference
    // boundaries so every run — any seed — exercises a real SIGKILL.
    const int remaining = options_.inferences - i;
    if (kills_ < options_.min_kills &&
        remaining <= options_.min_kills - kills_) {
      KillAndRespawn("forced");
    }

    const DoubleTensor input = MakeInput(0x17A9E + i);
    auto expected = RunScaledPlainInference(*plan, input);
    PPS_CHECK(expected.ok()) << expected.status().ToString();

    const double infer_start = obs::MonotonicSeconds();
    auto output = RunResilientInference(mp, dp, /*request_id=*/i + 1, input,
                                        ropts);
    const double infer_seconds = obs::MonotonicSeconds() - infer_start;
    if (!output.ok()) {
      failures_.push_back("inference " + std::to_string(i) + " failed: " +
                          output.status().ToString());
      Record("fail", failures_.back());
      ok = false;
      continue;
    }
    bool exact = output->NumElements() == expected->NumElements();
    for (int64_t j = 0; exact && j < expected->NumElements(); ++j) {
      exact = output.value()[j] == expected.value()[j];
    }
    if (!exact) {
      failures_.push_back("inference " + std::to_string(i) +
                          " diverged from the plain reference");
      Record("fail", failures_.back());
      ok = false;
    }
    Record("inference",
           "request " + std::to_string(i + 1) + " done in " +
               std::to_string(infer_seconds) + "s, reconnects so far " +
               std::to_string(channel->reconnects()));

    // Privacy sweep over everything sent so far: neither the plaintext
    // input nor the plaintext output may appear byte-for-byte in any
    // outbound payload, chaos or no chaos.
    std::vector<std::vector<uint8_t>> patterns;
    for (const DoubleTensor* t :
         std::initializer_list<const DoubleTensor*>{&input,
                                                    &expected.value()}) {
      for (int64_t j = 0; j < t->NumElements(); ++j) {
        std::vector<uint8_t> p(sizeof(double));
        const double v = (*t)[j];
        std::memcpy(p.data(), &v, sizeof(double));
        patterns.push_back(std::move(p));
      }
    }
    for (const auto& payload : outbound_payloads) {
      for (const auto& p : patterns) {
        if (std::search(payload.begin(), payload.end(), p.begin(),
                        p.end()) != payload.end()) {
          failures_.push_back("plaintext bytes found in an outbound frame "
                              "(inference " +
                              std::to_string(i) + ")");
          Record("fail", failures_.back());
          ok = false;
        }
      }
    }
  }

  if (kills_ < options_.min_kills) {
    failures_.push_back("only " + std::to_string(kills_) + " of " +
                        std::to_string(options_.min_kills) +
                        " required kills happened");
    ok = false;
  }
  if (kills_ > 0 && channel->reconnects() == 0) {
    failures_.push_back("server died but the channel never reconnected");
    ok = false;
  }
  if (kills_ > 0 && reconnects->Value() == 0) {
    failures_.push_back("net.reconnects stayed 0 across a server kill");
    ok = false;
  }

  // Black-box assertion: dump the recorder now that every interrupted
  // inference's spans have closed, then prove the dump really holds the
  // killed request's timeline (root span + chaos.kill event carry its
  // request id).
  if (kills_ > 0 && !options_.flightrec_out.empty()) {
    recorder.TriggerDump("chaos.post_kill");
    std::ifstream dump_in(options_.flightrec_out);
    std::string dump((std::istreambuf_iterator<char>(dump_in)),
                     std::istreambuf_iterator<char>());
    const std::string needle =
        "\"request_id\":" + std::to_string(killed_request_id_);
    if (dump.empty()) {
      failures_.push_back("flight recorder wrote no dump to " +
                          options_.flightrec_out);
      ok = false;
    } else if (dump.find(needle) == std::string::npos) {
      failures_.push_back(
          "flight recorder dump is missing the killed inference (request " +
          std::to_string(killed_request_id_) + ")");
      ok = false;
    } else {
      Record("flightrec", "dump holds request " +
                              std::to_string(killed_request_id_) + " at " +
                              options_.flightrec_out);
    }
  }

  // Graceful epilogue: SIGTERM (not KILL) the survivor and make sure the
  // drain path lets it exit cleanly — the cooperative half of the
  // lifecycle, end to end.
  transport.value()->Close();
  if (server_pid_ > 0) {
    ::kill(server_pid_, SIGTERM);
    int status = 0;
    ::waitpid(server_pid_, &status, 0);
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    Record("drain", std::string("SIGTERM exit ") +
                        (clean ? "clean" : "UNCLEAN"));
    if (!clean) {
      failures_.push_back("server did not drain cleanly on SIGTERM");
      ok = false;
    }
    server_pid_ = -1;
  }

  Record("summary", std::string(ok ? "PASS" : "FAIL") + ": " +
                        std::to_string(options_.inferences) +
                        " inferences, " + std::to_string(kills_) +
                        " kills, " +
                        std::to_string(channel->reconnects()) +
                        " reconnects");
  for (const auto& f : failures_) {
    std::fprintf(stderr, "chaos failure: %s\n", f.c_str());
  }
  if (!options_.trace_out.empty() && !WriteTrace(ok)) {
    std::fprintf(stderr, "chaos: could not write trace to %s\n",
                 options_.trace_out.c_str());
    ok = false;
  }
  return ok ? 0 : 1;
}

bool ChaosRun::WriteTrace(bool ok) const {
  std::ofstream out(options_.trace_out);
  if (!out) return false;
  out << "{\n  \"ok\": " << (ok ? "true" : "false")
      << ",\n  \"kills\": " << kills_ << ",\n  \"events\": [\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    out << "    {\"t\": " << events_[i].at_seconds << ", \"kind\": \""
        << events_[i].kind << "\", \"detail\": \"" << events_[i].detail
        << "\"}" << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"metrics\": {\n";
  bool first = true;
  for (const char* prefix : {"net.", "fault."}) {
    for (const auto& [name, value] :
         obs::MetricsRegistry::Global().CounterValues(prefix)) {
      out << (first ? "" : ",\n") << "    \"" << name << "\": " << value;
      first = false;
    }
  }
  out << "\n  }\n}\n";
  return out.good();
}

int ChaosMain(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--serve") == 0) {
    if (argc != 4) {
      std::fprintf(stderr, "usage: %s --serve <port> <epoch>\n", argv[0]);
      return 2;
    }
    return RunServerChild(
        static_cast<uint16_t>(std::strtoul(argv[2], nullptr, 10)),
        std::strtoull(argv[3], nullptr, 10));
  }

  ChaosOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      PPS_CHECK(i + 1 < argc) << arg << " needs a value";
      return argv[++i];
    };
    if (arg == "--inferences") {
      options.inferences = std::atoi(next());
    } else if (arg == "--kills") {
      options.min_kills = std::atoi(next());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--kill-probability") {
      options.kill_probability = std::atof(next());
    } else if (arg == "--socket-faults") {
      options.socket_faults = true;
    } else if (arg == "--trace-out") {
      options.trace_out = next();
    } else if (arg == "--flightrec-out") {
      options.flightrec_out = next();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--inferences N] [--kills N] [--seed S]\n"
                   "          [--kill-probability P] [--socket-faults]\n"
                   "          [--trace-out PATH] [--flightrec-out PATH]\n"
                   "       %s --serve <port> <epoch>\n",
                   argv[0], argv[0]);
      return 2;
    }
  }
  PPS_CHECK(options.min_kills <= options.inferences)
      << "--kills cannot exceed --inferences (forced kills happen at "
         "inference boundaries)";

  // Resolve our own binary once, up front: /proc/self/exe is the reliable
  // respawn path regardless of how argv[0] was spelled.
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  PPS_CHECK(n > 0) << "readlink(/proc/self/exe) failed";
  self[n] = '\0';

  ChaosRun run(options, self);
  return run.Run();
}

}  // namespace
}  // namespace ppstream

int main(int argc, char** argv) { return ppstream::ChaosMain(argc, argv); }
