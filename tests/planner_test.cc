// Tests for the ILP allocator (Eq. 4-8), the offline profiler, and the
// cluster simulator.

#include <gtest/gtest.h>

#include <memory>

#include "core/protocol.h"
#include "nn/layers.h"
#include "planner/allocation.h"
#include "planner/profiler.h"
#include "sim/bridge.h"
#include "sim/cluster_sim.h"
#include "util/rng.h"

namespace ppstream {
namespace {

// ------------------------------------------------------------ allocator

AllocationProblem TwoServerProblem() {
  AllocationProblem p;
  p.layer_times = {4.0, 1.0, 2.0};   // L, N, N
  p.layer_class = {+1, -1, -1};
  p.server_cores = {4, 4};
  p.server_class = {+1, -1};
  return p;
}

TEST(AllocatorTest, ObjectiveIsSumOfOrderedPairDiffs) {
  // rates: 4/2=2, 1/1=1, 2/2=1 -> pairs |2-1|+|2-1|+|1-1| = 2, x2 ordered.
  EXPECT_DOUBLE_EQ(AllocationObjective({4, 1, 2}, {2, 1, 2}), 4.0);
  EXPECT_DOUBLE_EQ(AllocationObjective({5, 5}, {1, 1}), 0.0);
}

TEST(AllocatorTest, SolveRespectsAllConstraints) {
  AllocationProblem p = TwoServerProblem();
  auto alloc = IlpAllocator::Solve(p);
  ASSERT_TRUE(alloc.ok()) << alloc.status().ToString();
  const Allocation& a = alloc.value();
  ASSERT_EQ(a.server_of_layer.size(), 3u);
  ASSERT_EQ(a.threads_of_layer.size(), 3u);
  // Eq. (6): layer class must match server class.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(p.server_class[a.server_of_layer[i]], p.layer_class[i]) << i;
    EXPECT_GE(a.threads_of_layer[i], 1);  // Eq. (7)
  }
  // Eq. (8): per-server thread budget (hyper-threading doubles cores).
  std::vector<int> used(p.server_cores.size(), 0);
  for (size_t i = 0; i < 3; ++i) {
    used[a.server_of_layer[i]] += a.threads_of_layer[i];
  }
  for (size_t j = 0; j < used.size(); ++j) {
    EXPECT_LE(used[j], p.server_cores[j] * 2);
  }
}

TEST(AllocatorTest, SolveFindsPerfectBalanceWhenOneExists) {
  // T = {8, 4, 2, 1} on generous servers: y = {8,4,2,1} -> all rates 1.
  AllocationProblem p;
  p.layer_times = {8, 4, 2, 1};
  p.layer_class = {+1, +1, -1, -1};
  p.server_cores = {8, 8};  // cap 16 per server with HT
  p.server_class = {+1, -1};
  auto alloc = IlpAllocator::Solve(p);
  ASSERT_TRUE(alloc.ok());
  EXPECT_TRUE(alloc.value().exact);
  EXPECT_NEAR(alloc.value().objective, 0.0, 1e-9);
}

TEST(AllocatorTest, SolveBeatsOrMatchesEvenSplit) {
  // Skewed times: even split wastes threads on cheap layers.
  AllocationProblem p;
  p.layer_times = {10.0, 0.1, 9.0, 0.2};
  p.layer_class = {+1, -1, +1, -1};
  p.server_cores = {3, 3};
  p.server_class = {+1, -1};
  auto solved = IlpAllocator::Solve(p);
  auto even = IlpAllocator::EvenSplit(p);
  ASSERT_TRUE(solved.ok() && even.ok());
  EXPECT_LE(solved.value().objective, even.value().objective + 1e-12);
}

TEST(AllocatorTest, GreedyIsFeasible) {
  AllocationProblem p = TwoServerProblem();
  auto greedy = IlpAllocator::Greedy(p);
  ASSERT_TRUE(greedy.ok());
  std::vector<int> used(p.server_cores.size(), 0);
  for (size_t i = 0; i < p.layer_times.size(); ++i) {
    EXPECT_EQ(p.server_class[greedy.value().server_of_layer[i]],
              p.layer_class[i]);
    used[greedy.value().server_of_layer[i]] +=
        greedy.value().threads_of_layer[i];
  }
  for (size_t j = 0; j < used.size(); ++j) {
    EXPECT_LE(used[j], p.server_cores[j] * 2);
  }
}

TEST(AllocatorTest, InfeasibleWhenCapacityTooSmall) {
  AllocationProblem p;
  p.layer_times = {1, 1, 1};
  p.layer_class = {+1, +1, +1};
  p.server_cores = {1};  // cap 2 with HT < 3 layers
  p.server_class = {+1};
  auto alloc = IlpAllocator::Solve(p);
  EXPECT_FALSE(alloc.ok());
  EXPECT_EQ(alloc.status().code(), StatusCode::kInfeasible);
}

TEST(AllocatorTest, RejectsMalformedProblems) {
  AllocationProblem p;
  EXPECT_FALSE(IlpAllocator::Solve(p).ok());  // empty
  p.layer_times = {1};
  p.layer_class = {+2};  // bad class
  p.server_cores = {4};
  p.server_class = {+1};
  EXPECT_FALSE(IlpAllocator::Solve(p).ok());
  p.layer_class = {+1};
  p.layer_times = {-1};  // bad time
  EXPECT_FALSE(IlpAllocator::Solve(p).ok());
}

TEST(AllocatorTest, HyperThreadingDoublesBudget) {
  AllocationProblem p;
  p.layer_times = {1, 1, 1, 1};
  p.layer_class = {+1, +1, +1, +1};
  p.server_cores = {2};
  p.server_class = {+1};
  p.hyper_threading = true;  // cap 4: feasible
  EXPECT_TRUE(IlpAllocator::Solve(p).ok());
  p.hyper_threading = false;  // cap 2: infeasible for 4 layers
  EXPECT_FALSE(IlpAllocator::Solve(p).ok());
}

// Exhaustive cross-check on a tiny instance: B&B must match brute force.
TEST(AllocatorTest, BranchAndBoundMatchesBruteForce) {
  AllocationProblem p;
  p.layer_times = {3.0, 1.5, 2.0};
  p.layer_class = {+1, -1, -1};
  p.server_cores = {2, 2};
  p.server_class = {+1, -1};
  const int cap = 4;  // 2 cores, HT

  double brute_best = 1e18;
  for (int y0 = 1; y0 <= cap; ++y0) {
    for (int y1 = 1; y1 <= cap; ++y1) {
      for (int y2 = 1; y2 <= cap; ++y2) {
        if (y1 + y2 > cap) continue;  // layers 1,2 share the data server
        brute_best = std::min(
            brute_best, AllocationObjective(p.layer_times, {y0, y1, y2}));
      }
    }
  }
  auto alloc = IlpAllocator::Solve(p);
  ASSERT_TRUE(alloc.ok());
  EXPECT_TRUE(alloc.value().exact);
  EXPECT_NEAR(alloc.value().objective, brute_best, 1e-9);
}

TEST(AllocatorTest, MinMaxObjectiveAlternative) {
  // The paper notes minimizing the max pairwise difference also works.
  EXPECT_DOUBLE_EQ(MaxPairwiseDiffObjective({4, 1, 2}, {2, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(MaxPairwiseDiffObjective({5, 5}, {1, 1}), 0.0);

  AllocationProblem p;
  p.layer_times = {8, 4, 2, 1};
  p.layer_class = {+1, +1, -1, -1};
  p.server_cores = {8, 8};
  p.server_class = {+1, -1};
  p.objective = AllocationProblem::Objective::kMinMaxDiff;
  auto alloc = IlpAllocator::Solve(p);
  ASSERT_TRUE(alloc.ok());
  EXPECT_TRUE(alloc.value().exact);
  // y = {8,4,2,1} equalizes every rate -> max diff 0.
  EXPECT_NEAR(alloc.value().objective, 0.0, 1e-9);
  // The reported objective is the min-max one.
  EXPECT_NEAR(MaxPairwiseDiffObjective(p.layer_times,
                                       alloc.value().threads_of_layer),
              alloc.value().objective, 1e-12);
}

TEST(AllocatorTest, ObjectivesCanDisagreeOnRanking) {
  // Two allocations where sum-of-diffs prefers one and min-max the other
  // (sanity that the two objectives are genuinely different).
  const std::vector<double> times = {6, 3, 3};
  const std::vector<int> a = {2, 1, 1};  // rates 3,3,3
  const std::vector<int> b = {3, 2, 1};  // rates 2,1.5,3
  EXPECT_LT(AllocationObjective(times, a), AllocationObjective(times, b));
  EXPECT_LT(MaxPairwiseDiffObjective(times, a),
            MaxPairwiseDiffObjective(times, b));
  const std::vector<int> c = {1, 1, 2};  // rates 6,3,1.5
  EXPECT_GT(MaxPairwiseDiffObjective(times, c),
            MaxPairwiseDiffObjective(times, b));
}

// ------------------------------------------------------------ profiler

TEST(ProfilerTest, ProfilesEveryStage) {
  Rng rng(3);
  auto keys = Paillier::GenerateKeyPair(128, rng);
  ASSERT_TRUE(keys.ok());

  Rng mrng(4);
  Model model(Shape{3}, "prof");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(3, 4, mrng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 2, mrng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  auto plan_or = CompilePlan(model, 100);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());

  ModelProvider mp(plan, keys.value().public_key, 5);
  DataProvider dp(plan, keys.value(), 6);

  std::vector<DoubleTensor> probes;
  for (int i = 0; i < 3; ++i) {
    DoubleTensor x{Shape{3}};
    for (int64_t j = 0; j < 3; ++j) x[j] = 0.1 * (i + 1) * (j + 1);
    probes.push_back(std::move(x));
  }
  auto profile = ProfilePlan(mp, dp, probes);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile.value().stage_seconds.size(), 5u);  // 2R+1, R=2
  EXPECT_EQ(profile.value().stage_class[0], -1);
  EXPECT_EQ(profile.value().stage_class[1], +1);
  EXPECT_EQ(profile.value().stage_class[2], -1);
  for (double t : profile.value().stage_seconds) EXPECT_GT(t, 0);
  for (size_t s = 0; s + 1 < 5; ++s) {
    EXPECT_GT(profile.value().stage_bytes_out[s], 0u) << s;
  }

  // Profile feeds a solvable allocation problem.
  AllocationProblem problem =
      BuildAllocationProblem(profile.value(), 2, 1, 4);
  auto alloc = IlpAllocator::Solve(problem);
  ASSERT_TRUE(alloc.ok()) << alloc.status().ToString();
  auto threads = StageThreadsFromAllocation(alloc.value());
  EXPECT_EQ(threads.size(), 5u);

  // And the allocation bridges into the simulator.
  auto stages = BuildSimStages(profile.value(), alloc.value());
  auto report = SimulatePipeline(stages, SimNetwork{}, SimWorkload{});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().avg_latency_seconds, 0);
}

TEST(ProfilerTest, RejectsEmptyProbes) {
  Rng rng(7);
  auto keys = Paillier::GenerateKeyPair(128, rng);
  ASSERT_TRUE(keys.ok());
  Rng mrng(8);
  Model model(Shape{2}, "p2");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(2, 2, mrng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  auto plan_or = CompilePlan(model, 10);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  ModelProvider mp(plan, keys.value().public_key, 9);
  DataProvider dp(plan, keys.value(), 10);
  EXPECT_FALSE(ProfilePlan(mp, dp, {}).ok());
}

// ------------------------------------------------------------ simulator

TEST(SimTest, AmdahlServiceTime) {
  SimStageSpec stage;
  stage.single_thread_seconds = 10;
  stage.parallel_fraction = 1.0;
  stage.threads = 5;
  EXPECT_DOUBLE_EQ(stage.ServiceSeconds(), 2.0);
  stage.parallel_fraction = 0.5;
  EXPECT_DOUBLE_EQ(stage.ServiceSeconds(), 5 + 1);
  stage.threads = 1;
  EXPECT_DOUBLE_EQ(stage.ServiceSeconds(), 10);
}

TEST(SimTest, SingleRequestLatencyIsSumOfServices) {
  std::vector<SimStageSpec> stages(3);
  for (int i = 0; i < 3; ++i) {
    stages[i].single_thread_seconds = i + 1.0;
    stages[i].server = 0;  // same server: no transfers
  }
  SimWorkload wl;
  wl.num_requests = 1;
  auto report = SimulatePipeline(stages, SimNetwork{}, wl);
  ASSERT_TRUE(report.ok());
  double expected = 0;
  for (const auto& s : stages) expected += s.ServiceSeconds();
  EXPECT_DOUBLE_EQ(report.value().avg_latency_seconds, expected);
}

TEST(SimTest, PipeliningBeatsCentralizedOnStreams) {
  std::vector<SimStageSpec> stages(4);
  for (int i = 0; i < 4; ++i) {
    stages[i].single_thread_seconds = 1.0;
    stages[i].server = i;  // distinct servers
    stages[i].bytes_out = 1000;
  }
  SimWorkload wl;
  wl.num_requests = 50;
  auto piped = SimulatePipeline(stages, SimNetwork{}, wl);
  auto central = SimulateCentralized(stages, wl);
  ASSERT_TRUE(piped.ok() && central.ok());
  // Pipelined makespan ~ N * bottleneck; centralized ~ N * sum.
  EXPECT_LT(piped.value().makespan_seconds,
            central.value().makespan_seconds / 2);
  EXPECT_GT(piped.value().throughput_rps, central.value().throughput_rps);
}

TEST(SimTest, BottleneckStageDominatesQueueing) {
  std::vector<SimStageSpec> balanced(2), skewed(2);
  balanced[0].single_thread_seconds = balanced[1].single_thread_seconds = 1;
  skewed[0].single_thread_seconds = 1.9;
  skewed[1].single_thread_seconds = 0.1;
  for (auto* v : {&balanced, &skewed}) {
    (*v)[0].server = 0;
    (*v)[1].server = 1;
  }
  SimWorkload wl;
  wl.num_requests = 40;
  auto b = SimulatePipeline(balanced, SimNetwork{}, wl);
  auto s = SimulatePipeline(skewed, SimNetwork{}, wl);
  ASSERT_TRUE(b.ok() && s.ok());
  // Same total work, but the skewed pipeline queues at its 1.9 s stage.
  EXPECT_LT(b.value().avg_latency_seconds, s.value().avg_latency_seconds);
}

TEST(SimTest, TransferCostOnlyBetweenDistinctServers) {
  std::vector<SimStageSpec> same(2), cross(2);
  for (auto* v : {&same, &cross}) {
    (*v)[0].single_thread_seconds = 1;
    (*v)[1].single_thread_seconds = 1;
    (*v)[0].bytes_out = 100'000'000;  // 100 MB -> noticeable at 10 Gbps
  }
  same[0].server = same[1].server = 0;
  cross[0].server = 0;
  cross[1].server = 1;
  SimWorkload wl;
  wl.num_requests = 1;
  auto a = SimulatePipeline(same, SimNetwork{}, wl);
  auto b = SimulatePipeline(cross, SimNetwork{}, wl);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b.value().avg_latency_seconds,
            a.value().avg_latency_seconds + 0.05);
}

TEST(SimTest, RejectsEmptyInputs) {
  EXPECT_FALSE(SimulatePipeline({}, SimNetwork{}, SimWorkload{}).ok());
  std::vector<SimStageSpec> stages(1);
  stages[0].single_thread_seconds = 1;
  SimWorkload wl;
  wl.num_requests = 0;
  EXPECT_FALSE(SimulatePipeline(stages, SimNetwork{}, wl).ok());
  EXPECT_FALSE(SimulateCentralized({}, SimWorkload{}).ok());
}

}  // namespace
}  // namespace ppstream
