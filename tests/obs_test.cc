// Tests for the observability layer (src/obs/): histogram bucket and
// quantile math, concurrent metric updates, trace-context propagation
// across the in-process and TCP transports (client and server spans must
// stitch into one trace with correct parenting), exporter output, the
// Prometheus linter, and the randomizer pool's refill accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/protocol.h"
#include "crypto/randomizer_pool.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/transport.h"
#include "net/wire.h"
#include "nn/layers.h"
#include "nn/model_zoo.h"
#include "obs/admin.h"
#include "obs/cost.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace ppstream {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::ScopedSpan;
using obs::SpanRecord;
using obs::TraceContext;
using obs::Tracer;

// ----------------------------------------------------------- histograms

TEST(HistogramTest, BucketBoundariesAreExactPowersOfTwo) {
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(0), obs::kHistogramMinBound);
  EXPECT_DOUBLE_EQ(Histogram::BucketUpperBound(1),
                   2 * obs::kHistogramMinBound);
  EXPECT_TRUE(
      std::isinf(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1)));

  for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    const double bound = Histogram::BucketUpperBound(i);
    // Upper bounds are inclusive; the next representable value above the
    // bound belongs to the next bucket.
    EXPECT_EQ(Histogram::BucketIndex(bound), i) << "bound " << bound;
    EXPECT_EQ(Histogram::BucketIndex(std::nextafter(bound, 1e300)), i + 1)
        << "just above bound " << bound;
  }
}

TEST(HistogramTest, TinyZeroAndNegativeLandInFirstBucket) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(obs::kHistogramMinBound / 2), 0u);
}

TEST(HistogramTest, OverflowLandsInLastBucket) {
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
  Histogram h;
  h.Record(1e9);
  EXPECT_EQ(h.BucketCount(Histogram::kNumBuckets - 1), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1e9);  // clamped to the exact max
}

TEST(HistogramTest, QuantilesResolveToBucketBoundsClampedToMax) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0);  // empty
  EXPECT_DOUBLE_EQ(h.Mean(), 0);

  for (int i = 0; i < 50; ++i) h.Record(1e-3);
  for (int i = 0; i < 50; ++i) h.Record(1e-1);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Max(), 1e-1);
  EXPECT_NEAR(h.Mean(), (50 * 1e-3 + 50 * 1e-1) / 100.0, 1e-12);

  // p50 is the upper bound of 1e-3's bucket: 1e-7 * 2^14 = 1.6384e-3.
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 1e-3);
  EXPECT_DOUBLE_EQ(p50, Histogram::BucketUpperBound(
                            Histogram::BucketIndex(1e-3)));
  // p95 falls in 1e-1's bucket, clamped to the exact max.
  EXPECT_DOUBLE_EQ(h.Quantile(0.95), 1e-1);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1e-1);
  // q=0 still returns the first sample's bucket, never a negative rank.
  EXPECT_GT(h.Quantile(0.0), 0);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h;
  h.Record(0.5);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0);
  EXPECT_DOUBLE_EQ(h.Max(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0);
}

// ---------------------------------------------------------- concurrency

TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Handle lookup races with other threads' lookups of the same name.
      obs::Counter* c = registry.GetCounter("test.contended");
      obs::Histogram* h = registry.GetHistogram("test.contended_hist");
      for (int i = 0; i < kIncrements; ++i) {
        c->Increment();
        h->Record(1e-4);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("test.contended")->Value(),
            uint64_t{kThreads} * kIncrements);
  EXPECT_EQ(registry.GetHistogram("test.contended_hist")->Count(),
            uint64_t{kThreads} * kIncrements);
}

TEST(MetricsRegistryTest, HandlesAreStableAndResetKeepsThem) {
  MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("a.b");
  c->Increment(3);
  EXPECT_EQ(registry.GetCounter("a.b"), c);
  registry.Reset();
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  EXPECT_EQ(registry.GetCounter("a.b")->Value(), 1u);
}

TEST(MetricsRegistryTest, PrefixFilteringAndSorting) {
  MetricsRegistry registry;
  registry.GetCounter("stage.b.messages")->Increment(2);
  registry.GetCounter("stage.a.messages")->Increment(1);
  registry.GetCounter("crypto.encrypts")->Increment(9);
  const auto stage = registry.CounterValues("stage.");
  ASSERT_EQ(stage.size(), 2u);
  EXPECT_EQ(stage[0].first, "stage.a.messages");
  EXPECT_EQ(stage[1].first, "stage.b.messages");
}

// ------------------------------------------------------------ exporters

TEST(PrometheusTest, MetricNameSanitization) {
  EXPECT_EQ(obs::PrometheusMetricName("stage.dp-encrypt.attempt_seconds"),
            "pps_stage_dp_encrypt_attempt_seconds");
  EXPECT_EQ(obs::PrometheusMetricName("net.bytes_sent"),
            "pps_net_bytes_sent");
}

TEST(PrometheusTest, ExportIsWellFormedAndCompleteForAllKinds) {
  MetricsRegistry registry;
  registry.GetCounter("crypto.encrypts")->Increment(7);
  registry.GetGauge("crypto.pool.available")->Set(12.5);
  registry.GetHistogram("stage.s.attempt_seconds")->Record(2e-3);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE pps_crypto_encrypts counter"),
            std::string::npos);
  EXPECT_NE(text.find("pps_crypto_encrypts 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pps_crypto_pool_available gauge"),
            std::string::npos);
  EXPECT_NE(text.find("pps_crypto_pool_available 12.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pps_stage_s_attempt_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("pps_stage_s_attempt_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("pps_stage_s_attempt_seconds_count 1"),
            std::string::npos);

  const Status lint = obs::CheckPrometheusText(text);
  EXPECT_TRUE(lint.ok()) << lint.ToString();
}

TEST(PrometheusTest, LinterRejectsMalformedExpositions) {
  // Sample without a preceding # TYPE.
  EXPECT_FALSE(obs::CheckPrometheusText("pps_orphan 1\n").ok());
  // Bad metric name (leading digit).
  EXPECT_FALSE(
      obs::CheckPrometheusText("# TYPE 9bad counter\n9bad 1\n").ok());
  // Non-numeric value.
  EXPECT_FALSE(obs::CheckPrometheusText(
                   "# TYPE pps_x counter\npps_x banana\n")
                   .ok());
  // Unterminated label set.
  EXPECT_FALSE(obs::CheckPrometheusText(
                   "# TYPE pps_x counter\npps_x{le=\"1\" 3\n")
                   .ok());
  // Unknown type keyword.
  EXPECT_FALSE(
      obs::CheckPrometheusText("# TYPE pps_x matrix\npps_x 1\n").ok());
  // Valid +Inf value passes.
  EXPECT_TRUE(obs::CheckPrometheusText(
                  "# TYPE pps_h histogram\npps_h_bucket{le=\"+Inf\"} 2\n"
                  "pps_h_sum 0.5\npps_h_count 2\n")
                  .ok());
}

TEST(ChromeTraceTest, JsonCarriesSpanIdentityAndTiming) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  uint64_t trace_id = 0;
  {
    ScopedSpan root = ScopedSpan::Root("request", "request", 42);
    trace_id = root.context().trace_id;
    ScopedSpan child("crypto.encrypt_batch", "crypto", 42);
  }
  tracer.SetEnabled(false);

  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);  // child recorded first (inner scope)
  EXPECT_EQ(spans[0].name, "crypto.encrypt_batch");
  EXPECT_EQ(spans[1].name, "request");
  EXPECT_EQ(spans[0].trace_id, trace_id);
  EXPECT_EQ(spans[0].parent_span_id, spans[1].span_id);
  EXPECT_EQ(spans[1].parent_span_id, 0u);

  std::ostringstream out;
  tracer.WriteChromeJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"crypto.encrypt_batch\""),
            std::string::npos);
  EXPECT_NE(json.find("\"request_id\":42"), std::string::npos);
  tracer.Clear();
}

TEST(TracerTest, DisabledSpansAreInertAndIdsAreNonzero) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  {
    ScopedSpan root = ScopedSpan::Root("request");
    EXPECT_FALSE(root.active());
    EXPECT_FALSE(obs::CurrentTraceContext().active());
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(tracer.NewTraceId(), 0u);
  }
}

TEST(TracerTest, CapacityBoundsBufferAndCountsDrops) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetCapacity(4);
  tracer.SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan root = ScopedSpan::Root("burst");
  }
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.Snapshot().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  tracer.Clear();
  tracer.SetCapacity(size_t{1} << 16);
}

// --------------------------------------- trace propagation (transports)

class ObsNetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(7);
    auto pair = Paillier::GenerateKeyPair(256, rng);
    ASSERT_TRUE(pair.ok());
    keys_ = new PaillierKeyPair(std::move(pair).value());

    Rng mrng(8);
    Model model(Shape{4}, "obs-net");
    PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 6, mrng)));
    PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
    PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 3, mrng)));
    PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
    auto plan = CompilePlan(model, 1000);
    ASSERT_TRUE(plan.ok());
    plan_ = new std::shared_ptr<const InferencePlan>(
        std::make_shared<const InferencePlan>(std::move(plan).value()));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete plan_;
  }

  void SetUp() override {
    Tracer::Global().Clear();
    Tracer::Global().SetEnabled(true);
  }
  void TearDown() override {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
  }

  static DoubleTensor MakeInput(uint64_t seed) {
    Rng rng(seed);
    DoubleTensor x{Shape{4}};
    for (int64_t j = 0; j < 4; ++j) x[j] = rng.NextUniform(-2, 2);
    return x;
  }

  /// Asserts the collected spans form ONE stitched trace: a single trace
  /// id, exactly one root, and every parent id resolving to a recorded
  /// span of the same trace.
  static void CheckSingleStitchedTrace(const std::vector<SpanRecord>& spans) {
    ASSERT_FALSE(spans.empty());
    std::set<uint64_t> trace_ids;
    std::set<uint64_t> span_ids;
    for (const SpanRecord& s : spans) {
      trace_ids.insert(s.trace_id);
      EXPECT_NE(s.span_id, 0u);
      EXPECT_TRUE(span_ids.insert(s.span_id).second)
          << "duplicate span id for " << s.name;
    }
    EXPECT_EQ(trace_ids.size(), 1u) << "spans split across traces";
    size_t roots = 0;
    for (const SpanRecord& s : spans) {
      if (s.parent_span_id == 0) {
        ++roots;
        continue;
      }
      EXPECT_TRUE(span_ids.count(s.parent_span_id))
          << s.name << " has an unresolved parent";
    }
    EXPECT_EQ(roots, 1u);
  }

  static size_t CountByName(const std::vector<SpanRecord>& spans,
                            std::string_view prefix) {
    size_t n = 0;
    for (const SpanRecord& s : spans) {
      if (s.name.compare(0, prefix.size(), prefix) == 0) ++n;
    }
    return n;
  }

  static PaillierKeyPair* keys_;
  static std::shared_ptr<const InferencePlan>* plan_;
};

PaillierKeyPair* ObsNetTest::keys_ = nullptr;
std::shared_ptr<const InferencePlan>* ObsNetTest::plan_ = nullptr;

TEST_F(ObsNetTest, InProcessChannelStitchesClientAndServerSpans) {
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 21);
  auto channel = std::make_shared<InProcessFrameChannel>(
      [local_mp](const WireFrame& request) {
        return DispatchModelProviderFrame(*local_mp, request);
      });
  RemoteModelProvider mp(channel, *plan_);
  DataProvider dp(*plan_, *keys_, 23);

  auto output = RunProtocolInference(mp, dp, /*request_id=*/1,
                                     MakeInput(31));
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  const auto spans = Tracer::Global().Snapshot();
  CheckSingleStitchedTrace(spans);
  // Client-side net spans and dispatcher-side rpc spans both present, and
  // every rpc span's parent is the matching net span.
  EXPECT_GT(CountByName(spans, "net."), 0u);
  EXPECT_GT(CountByName(spans, "rpc."), 0u);
  EXPECT_GT(CountByName(spans, "crypto."), 0u);
  std::set<uint64_t> net_ids;
  for (const SpanRecord& s : spans) {
    if (s.name.compare(0, 4, "net.") == 0) net_ids.insert(s.span_id);
  }
  for (const SpanRecord& s : spans) {
    if (s.name.compare(0, 4, "rpc.") == 0) {
      EXPECT_TRUE(net_ids.count(s.parent_span_id))
          << s.name << " does not parent under a net span";
    }
  }
}

TEST_F(ObsNetTest, TcpLoopbackInferenceProducesOneStitchedTrace) {
  ModelProviderServerOptions server_options;
  server_options.worker_threads = 2;
  ModelProviderTcpServer server(*plan_, server_options);
  ASSERT_TRUE(server.Listen(0).ok());
  std::thread server_thread(
      [&server] { ASSERT_TRUE(server.ServeOne(10.0).ok()); });

  auto transport = TcpTransport::Connect("127.0.0.1", server.port(),
                                         keys_->public_key);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();

  DataProvider dp(transport.value()->view_plan(), *keys_, 103);
  auto output = RunProtocolInference(*transport.value()->model_provider(),
                                     dp, /*request_id=*/7, MakeInput(111));
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  transport.value().reset();  // hang up so the server thread exits
  server_thread.join();

  // Both processes' worth of spans land in the same (process-shared)
  // tracer here; the trace block in the wire header is what connects the
  // server-side rpc spans to the client's net spans.
  const auto spans = Tracer::Global().Snapshot();
  CheckSingleStitchedTrace(spans);
  EXPECT_GT(CountByName(spans, "net."), 0u);
  EXPECT_GT(CountByName(spans, "rpc."), 0u);
}

TEST_F(ObsNetTest, UntracedTcpFramesAreBitIdenticalToWireV1) {
  Tracer::Global().SetEnabled(false);  // this test wants v1 frames
  const WireFrame frame = MakeRequestFrame(WireMethod::kMpProcessRound,
                                           /*request_id=*/5, /*round=*/0,
                                           {1, 2, 3});
  const auto bytes = EncodeFrame(frame);
  EXPECT_EQ(bytes.size(), kFrameHeaderBytes + 3);
  auto version = PeekFrameVersion(bytes.data(), bytes.size());
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), kWireVersion);

  // Traced frames grow by exactly the 16-byte trace block and decode back
  // to the same logical frame plus trace identity.
  const auto traced = EncodeFrameWithTrace(frame, 0xAAAA, 0xBBBB);
  EXPECT_EQ(traced.size(), bytes.size() + kFrameTraceBytes);
  // The v1 prefix up to the version field and after it is unchanged.
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.begin() + 4, traced.begin()));
  auto back = DecodeFrame(traced);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->version, kWireVersionTraced);
  EXPECT_EQ(back->trace_id, 0xAAAAu);
  EXPECT_EQ(back->parent_span_id, 0xBBBBu);
  EXPECT_EQ(back->payload, frame.payload);

  // Responses echo the request's trace block.
  auto request = DecodeFrame(traced);
  ASSERT_TRUE(request.ok());
  const WireFrame response = MakeResponseFrame(*request, {9});
  EXPECT_EQ(response.trace_id, 0xAAAAu);
  EXPECT_EQ(response.parent_span_id, 0xBBBBu);
}

TEST_F(ObsNetTest, EngineTraceRootsEveryStageSpan) {
  auto mp = std::make_shared<ModelProvider>(*plan_, keys_->public_key, 41);
  auto dp = std::make_shared<DataProvider>(*plan_, *keys_, 43);
  EngineConfig config;
  config.stage_threads = {1, 1, 1, 1, 1};
  PpStreamEngine engine(mp, dp, config);
  ASSERT_TRUE(engine.Start().ok());
  ASSERT_TRUE(engine.Submit(1, MakeInput(100)).ok());
  ASSERT_TRUE(engine.NextResult().ok());
  engine.Shutdown();

  const auto spans = Tracer::Global().Snapshot();
  CheckSingleStitchedTrace(spans);
  // One "request" root plus one span per pipeline stage, each a direct
  // child of the root.
  uint64_t root_span = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "request") root_span = s.span_id;
  }
  ASSERT_NE(root_span, 0u);
  size_t stage_spans = 0;
  for (const SpanRecord& s : spans) {
    if (s.name.compare(0, 6, "stage.") == 0) {
      ++stage_spans;
      EXPECT_EQ(s.parent_span_id, root_span) << s.name;
    }
  }
  EXPECT_EQ(stage_spans, 5u);
}

// -------------------------------------------------- stage metric deltas

TEST(StageMetricsTest, SequentialStagesWithSameNameSeeOwnCounts) {
  auto passthrough = [](StreamMessage msg, ThreadPool&)
      -> Result<StreamMessage> { return msg; };
  for (int run = 0; run < 2; ++run) {
    Stage stage("obs-delta-stage", 1, passthrough);
    Channel<StreamMessage> in(4);
    Channel<StreamMessage> out(4);
    stage.Start(&in, &out);
    const int n = 2 + run;
    for (int i = 0; i < n; ++i) {
      StreamMessage msg;
      msg.request_id = static_cast<uint64_t>(i);
      msg.payload = {1, 2, 3};
      ASSERT_TRUE(in.Send(std::move(msg)));
    }
    in.Close();
    stage.Join();
    // The registry accumulates across runs; metrics() reports only this
    // instance's delta.
    EXPECT_EQ(stage.metrics().messages_processed, static_cast<uint64_t>(n));
    EXPECT_EQ(stage.metrics().errors, 0u);
  }
}

// ----------------------------------------------- randomizer pool refill

TEST(RandomizerPoolObsTest, BackgroundRefillKeepsPoolAboveLowWater) {
  Rng rng(5);
  auto pair = Paillier::GenerateKeyPair(256, rng);
  ASSERT_TRUE(pair.ok());

  RandomizerPool::Options options;
  options.capacity = 16;
  options.low_water = 8;
  options.background_refill = true;
  RandomizerPool pool(pair->public_key, /*seed=*/77, options);
  pool.Fill();
  ASSERT_EQ(pool.available(), 16u);

  // Sustained draw: drain below low-water repeatedly; the background
  // thread must top the pool back up each time.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 12; ++i) (void)pool.Take();
    const double deadline = obs::MonotonicSeconds() + 30.0;
    while (pool.available() < options.low_water &&
           obs::MonotonicSeconds() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_GE(pool.available(), options.low_water)
        << "refill thread never restored low water (round " << round << ")";
  }

  // A refill pass only counts once it tops the pool up to full capacity,
  // which can land well after available() crosses low-water when the
  // modexp is slow (sanitizer builds) — wait for the pass, not the level.
  const double refill_deadline = obs::MonotonicSeconds() + 30.0;
  while (pool.stats().refills == 0 &&
         obs::MonotonicSeconds() < refill_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const RandomizerPool::Stats stats = pool.stats();
  EXPECT_GT(stats.refills, 0u);
  EXPECT_GT(stats.hits, 0u);
  // The registry mirror aggregates across pools, so it is at least this
  // instance's totals.
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_GE(registry.GetCounter("crypto.pool.refills")->Value(),
            stats.refills);
  EXPECT_GE(registry.GetCounter("crypto.pool.hits")->Value(), stats.hits);
  EXPECT_GE(registry.GetCounter("crypto.pool.produced")->Value(),
            stats.produced);
}

// ------------------------------------------- per-request cost attribution

TEST(CostIntervalTest, DisjointComponentsNestWithoutContention) {
  // The loopback topology: a client-side interval mutating only encrypts
  // encloses a server-side dispatch interval mutating only scalar muls.
  obs::CostInterval outer(obs::kCostEncrypts);
  {
    obs::CostInterval inner(obs::kCostScalarMuls);
    inner.End();
    EXPECT_EQ(inner.contended_mask(), 0u);
  }
  outer.End();
  EXPECT_EQ(outer.contended_mask(), 0u);
  EXPECT_FALSE(outer.contended());
}

TEST(CostIntervalTest, SameComponentOverlapMarksBothContended) {
  obs::CostInterval first(obs::kCostScalarMuls);
  obs::CostInterval second(obs::kCostScalarMuls);
  second.End();
  first.End();
  EXPECT_EQ(first.contended_mask(), obs::kCostScalarMuls);
  EXPECT_EQ(second.contended_mask(), obs::kCostScalarMuls);
  // A later interval with the sets drained again is clean.
  obs::CostInterval third(obs::kCostScalarMuls);
  third.End();
  EXPECT_EQ(third.contended_mask(), 0u);
}

TEST(CostLedgerTest, OverrunFiresOnMispricedBudget) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Counter* overrun = registry.GetCounter("cost.overrun");
  obs::Counter* reconciled = registry.GetCounter("cost.reconciled");
  const uint64_t overrun0 = overrun->Value();
  const uint64_t reconciled0 = reconciled->Value();
  {
    // A plan that claims 10 scalar muls against work that does 100: the
    // mispriced-plan negative case.
    obs::RequestCostLedger ledger(/*request_id=*/71,
                                  obs::RequestCostBudget{0, 10});
    registry.GetCounter("crypto.scalar_muls")->Increment(100);
    ledger.Finish(/*success=*/true);
    EXPECT_FALSE(ledger.contended());
    EXPECT_NEAR(ledger.scalar_mul_ratio(), 10.0, 1e-9);
  }
  EXPECT_EQ(overrun->Value(), overrun0 + 1);
  EXPECT_EQ(reconciled->Value(), reconciled0 + 1);
}

TEST(CostLedgerTest, FailedRequestRecordsNothing) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Counter* reconciled = registry.GetCounter("cost.reconciled");
  obs::Counter* overrun = registry.GetCounter("cost.overrun");
  const uint64_t reconciled0 = reconciled->Value();
  const uint64_t overrun0 = overrun->Value();
  {
    obs::RequestCostLedger ledger(/*request_id=*/72,
                                  obs::RequestCostBudget{0, 1});
    registry.GetCounter("crypto.scalar_muls")->Increment(50);
    // No Finish(true): the destructor finishes as a failure.
  }
  EXPECT_EQ(reconciled->Value(), reconciled0);
  EXPECT_EQ(overrun->Value(), overrun0);
}

TEST(CostLedgerTest, ContendedSampleIsSkippedNotMispriced) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  obs::Counter* skips = registry.GetCounter("cost.contended_skips");
  obs::Counter* reconciled = registry.GetCounter("cost.reconciled");
  const uint64_t skips0 = skips->Value();
  const uint64_t reconciled0 = reconciled->Value();
  {
    obs::RequestCostLedger a(/*request_id=*/73,
                             obs::RequestCostBudget{0, 10});
    obs::RequestCostLedger b(/*request_id=*/74,
                             obs::RequestCostBudget{0, 10});
    registry.GetCounter("crypto.scalar_muls")->Increment(20);
    b.Finish(/*success=*/true);
    a.Finish(/*success=*/true);
    EXPECT_TRUE(a.contended());
    EXPECT_TRUE(b.contended());
  }
  EXPECT_EQ(skips->Value(), skips0 + 2);
  EXPECT_EQ(reconciled->Value(), reconciled0);
}

/// MNIST-2, trained and compiled once: the acceptance model for the
/// measured-vs-expected reconciliation band.
class CostMnist2Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSplit data = MakeZooDataset(ZooModelId::kMnist2,
                                       /*size_scale=*/0.005, /*seed=*/3);
    auto model = MakeTrainedZooModel(ZooModelId::kMnist2, data.train, 4);
    PPS_CHECK_OK(model.status());
    input_ = new DoubleTensor(data.test.samples.at(0));

    Rng rng(11);
    auto pair = Paillier::GenerateKeyPair(256, rng);
    PPS_CHECK_OK(pair.status());
    keys_ = new PaillierKeyPair(std::move(pair).value());

    auto plan = CompilePlan(model.value(), /*scale=*/10000);
    PPS_CHECK_OK(plan.status());
    plan_ = new std::shared_ptr<const InferencePlan>(
        std::make_shared<const InferencePlan>(std::move(plan).value()));
    PPS_CHECK_OK((*plan_)->CheckFitsKey(keys_->public_key.n()));

    CompileOptions pack_opts;
    pack_opts.packing = planner::PackingSpec{};
    pack_opts.packing->key_bits = 256;
    auto packed = CompilePlan(model.value(), /*scale=*/10000, pack_opts);
    PPS_CHECK_OK(packed.status());
    packed_plan_ = new std::shared_ptr<const InferencePlan>(
        std::make_shared<const InferencePlan>(std::move(packed).value()));
    PPS_CHECK_OK((*packed_plan_)->CheckFitsKey(keys_->public_key.n()));
  }
  static void TearDownTestSuite() {
    delete input_;
    delete keys_;
    delete plan_;
    delete packed_plan_;
  }

  static DoubleTensor* input_;
  static PaillierKeyPair* keys_;
  static std::shared_ptr<const InferencePlan>* plan_;
  static std::shared_ptr<const InferencePlan>* packed_plan_;
};

DoubleTensor* CostMnist2Test::input_ = nullptr;
PaillierKeyPair* CostMnist2Test::keys_ = nullptr;
std::shared_ptr<const InferencePlan>* CostMnist2Test::plan_ = nullptr;
std::shared_ptr<const InferencePlan>* CostMnist2Test::packed_plan_ = nullptr;

TEST_F(CostMnist2Test, ScalarRequestReconcilesWithinFivePercent) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const obs::RequestCostBudget budget = ExpectedRequestCost(**plan_);
  ASSERT_GT(budget.scalar_muls, 0u);
  ASSERT_GT(budget.encrypts, 0u);
  obs::Counter* reconciled = registry.GetCounter("cost.reconciled");
  obs::Counter* overrun = registry.GetCounter("cost.overrun");
  const obs::Histogram* ratio_hist =
      registry.GetHistogram("cost.scalar_mul_ratio");
  const uint64_t reconciled0 = reconciled->Value();
  const uint64_t overrun0 = overrun->Value();
  const uint64_t hist_count0 = ratio_hist->Count();
  const double hist_sum0 = ratio_hist->Sum();

  ModelProvider mp(*plan_, keys_->public_key, /*obf_seed=*/301);
  DataProvider dp(*plan_, *keys_, /*enc_seed=*/302);
  const obs::CryptoCostSnapshot before = obs::CryptoCostSnapshot::Capture();
  auto out = RunProtocolInference(mp, dp, /*request_id=*/81, *input_);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const obs::CryptoCostSnapshot delta =
      obs::CryptoCostSnapshot::Capture() - before;

  const double mul_ratio = static_cast<double>(delta.scalar_muls) /
                           static_cast<double>(budget.scalar_muls);
  const double enc_ratio = static_cast<double>(delta.encrypts) /
                           static_cast<double>(budget.encrypts);
  EXPECT_GE(mul_ratio, 0.95);
  EXPECT_LE(mul_ratio, 1.05);
  EXPECT_GE(enc_ratio, 0.95);
  EXPECT_LE(enc_ratio, 1.05);
  // The driver's own ledger must have reconciled the same sample into
  // the exported families, without an overrun.
  EXPECT_EQ(reconciled->Value(), reconciled0 + 1);
  EXPECT_EQ(overrun->Value(), overrun0);
  EXPECT_EQ(ratio_hist->Count(), hist_count0 + 1);
  EXPECT_NEAR(ratio_hist->Sum() - hist_sum0, mul_ratio, 1e-9);
}

TEST_F(CostMnist2Test, PackedBatchReconcilesWithinFivePercent) {
  const int64_t lanes = (*packed_plan_)->PackedBatchLanes();
  ASSERT_GE(lanes, 2);
  const int64_t batch = std::min<int64_t>(lanes, 4);
  std::vector<DoubleTensor> inputs(static_cast<size_t>(batch), *input_);
  const obs::RequestCostBudget budget =
      ExpectedPackedBatchCost(**packed_plan_, batch);
  ASSERT_GT(budget.scalar_muls, 0u);
  ASSERT_GT(budget.encrypts, 0u);

  ModelProvider mp(*packed_plan_, keys_->public_key, /*obf_seed=*/303);
  DataProvider dp(*packed_plan_, *keys_, /*enc_seed=*/304);
  const obs::CryptoCostSnapshot before = obs::CryptoCostSnapshot::Capture();
  auto outs = RunPackedBatchInference(mp, dp, /*request_id=*/82, inputs);
  ASSERT_TRUE(outs.ok()) << outs.status().ToString();
  const obs::CryptoCostSnapshot delta =
      obs::CryptoCostSnapshot::Capture() - before;

  const double mul_ratio = static_cast<double>(delta.scalar_muls) /
                           static_cast<double>(budget.scalar_muls);
  const double enc_ratio = static_cast<double>(delta.encrypts) /
                           static_cast<double>(budget.encrypts);
  EXPECT_GE(mul_ratio, 0.95);
  EXPECT_LE(mul_ratio, 1.05);
  EXPECT_GE(enc_ratio, 0.95);
  EXPECT_LE(enc_ratio, 1.05);
}

// -------------------------------------------------------- admin endpoint

namespace admin_http {

/// One-shot HTTP/1.0 GET; the endpoint closes after the response, so EOF
/// delimits it.
std::string Get(uint16_t port, const std::string& target) {
  auto sock = TcpSocket::Connect("127.0.0.1", port, 5.0);
  PPS_CHECK_OK(sock.status());
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  PPS_CHECK_OK(sock->SendAll(reinterpret_cast<const uint8_t*>(request.data()),
                             request.size(), 5.0));
  std::string response;
  uint8_t buf[2048];
  for (;;) {
    auto n = sock->RecvSome(buf, sizeof(buf), 5.0);
    if (!n.ok()) break;
    response.append(reinterpret_cast<const char*>(buf), *n);
  }
  return response;
}

std::string Body(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  PPS_CHECK(split != std::string::npos);
  return response.substr(split + 4);
}

}  // namespace admin_http

TEST(AdminRouteTest, EdgeRequestsGetPreciseErrorCodes) {
  obs::AdminServer admin;  // routing needs no socket
  EXPECT_EQ(admin.RouteRequest("GET /nope HTTP/1.0").substr(0, 16),
            "HTTP/1.0 404 Not");
  EXPECT_EQ(admin.RouteRequest("complete garbage").substr(0, 12),
            "HTTP/1.0 400");
  EXPECT_EQ(admin.RouteRequest("POST /metrics HTTP/1.0").substr(0, 12),
            "HTTP/1.0 400");
  EXPECT_EQ(admin.RouteRequest("GET /metrics").substr(0, 12),
            "HTTP/1.0 400");  // no HTTP version token
  EXPECT_EQ(admin
                .RouteRequest(std::string(obs::AdminServer::kMaxRequestBytes,
                                          'x'),
                              /*oversized=*/true)
                .substr(0, 12),
            "HTTP/1.0 431");
  // /metrics routes through CheckedPrometheusText even with no state.
  const std::string metrics = admin.RouteRequest("GET /metrics HTTP/1.0");
  EXPECT_EQ(metrics.substr(0, 12), "HTTP/1.0 200");
  // /debug/flightrec without a provider is absent, not empty.
  EXPECT_EQ(admin.RouteRequest("GET /debug/flightrec HTTP/1.0").substr(0, 12),
            "HTTP/1.0 404");
}

TEST_F(ObsNetTest, AdminEndpointServesLiveScrapeDuringSession) {
  ModelProviderServerOptions options;
  options.admin_port = 0;  // ephemeral
  ModelProviderTcpServer server(*plan_, options);
  ASSERT_TRUE(server.Listen(0).ok());
  const uint16_t admin_port = server.admin_port();
  ASSERT_NE(admin_port, 0);
  std::thread server_thread([&server] { ASSERT_TRUE(server.Serve().ok()); });

  auto transport = TcpTransport::Connect("127.0.0.1", server.port(),
                                         keys_->public_key);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  DataProvider dp(transport.value()->view_plan(), *keys_, 401);
  auto out = RunProtocolInference(*transport.value()->model_provider(), dp,
                                  /*request_id=*/91, MakeInput(92));
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  // Scrape while the connection and its session are still live.
  const std::string metrics = admin_http::Get(admin_port, "/metrics");
  ASSERT_EQ(metrics.substr(0, 12), "HTTP/1.0 200") << metrics.substr(0, 64);
  const std::string body = admin_http::Body(metrics);
  EXPECT_TRUE(obs::CheckPrometheusText(body).ok());
  for (const char* family :
       {"pps_serving_requests", "pps_serving_inflight", "pps_cost_reconciled",
        "pps_crypto_scalar_muls"}) {
    EXPECT_NE(body.find(family), std::string::npos)
        << "live scrape missing " << family;
  }

  const std::string statusz = admin_http::Get(admin_port, "/statusz");
  ASSERT_EQ(statusz.substr(0, 12), "HTTP/1.0 200");
  const std::string status_body = admin_http::Body(statusz);
  // A live session row, named by its public ordinal...
  EXPECT_NE(status_body.find("\"sessions\":{\"live\":1"), std::string::npos)
      << status_body;
  EXPECT_NE(status_body.find("\"ordinal\":1"), std::string::npos);
  // ...and zero secret material: no session id, key, or randomizer field.
  EXPECT_EQ(status_body.find("session_id"), std::string::npos);
  EXPECT_EQ(status_body.find("key"), std::string::npos) << status_body;
  EXPECT_EQ(status_body.find("randomizer\":"), std::string::npos);

  EXPECT_EQ(admin_http::Get(admin_port, "/healthz").substr(0, 12),
            "HTTP/1.0 200");
  EXPECT_EQ(admin_http::Get(admin_port, "/nothing-here").substr(0, 12),
            "HTTP/1.0 404");

  transport.value()->Close();
  server.BeginDrain(/*grace_seconds=*/1.0);
  // Draining flips /healthz to 503 while the admin plane stays up.
  EXPECT_EQ(admin_http::Get(admin_port, "/healthz").substr(0, 12),
            "HTTP/1.0 503");
  server_thread.join();
  EXPECT_GE(server.connections_served(), 1u);
}

TEST(AdminServerTest, StandaloneStartStopAndCounters) {
  obs::AdminServer admin;
  obs::AdminState state;
  state.statusz_json = [] { return std::string("{\"ok\":true}"); };
  ASSERT_TRUE(admin.Start(0, std::move(state)).ok());
  ASSERT_NE(admin.port(), 0);

  EXPECT_EQ(admin_http::Body(admin_http::Get(admin.port(), "/statusz")),
            "{\"ok\":true}");
  EXPECT_EQ(admin_http::Get(admin.port(), "/bogus").substr(0, 12),
            "HTTP/1.0 404");
  EXPECT_EQ(admin.requests_served(), 2u);
  admin.Stop();
  admin.Stop();  // idempotent
}

TEST(AdminServerTest, TricklingClientCannotStarveTheEndpoint) {
  obs::AdminServer admin;
  // The budget is per connection, not per received byte: shrink it so
  // the test observes the drop without waiting out the real 5s.
  admin.set_connection_deadline_seconds(0.3);
  ASSERT_TRUE(admin.Start(0, obs::AdminState{}).ok());

  // A client that sends a partial request line and then stalls occupies
  // the single accept thread only until the overall deadline...
  auto slow = TcpSocket::Connect("127.0.0.1", admin.port(), 5.0);
  ASSERT_TRUE(slow.ok());
  const char partial[] = "GET /met";
  ASSERT_TRUE(slow
                  ->SendAll(reinterpret_cast<const uint8_t*>(partial),
                            sizeof(partial) - 1, 5.0)
                  .ok());
  // ...so a well-behaved scrape queued behind it is still answered
  // promptly instead of waiting minutes for the trickler to finish.
  const double start = obs::MonotonicSeconds();
  const std::string healthz = admin_http::Get(admin.port(), "/healthz");
  const double elapsed = obs::MonotonicSeconds() - start;
  EXPECT_EQ(healthz.substr(0, 12), "HTTP/1.0 200") << healthz.substr(0, 64);
  EXPECT_LT(elapsed, 3.0) << "healthz starved behind a trickling client";
  admin.Stop();
}

// ------------------------------------------------------- flight recorder

TEST(FlightRecorderTest, DisabledRecorderKeepsRingEmpty) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  rec.SetEnabled(false);
  rec.Reset();
  rec.RecordEvent("should.not.appear", "off");
  EXPECT_EQ(rec.DumpJson().find("should.not.appear"), std::string::npos);
}

TEST(FlightRecorderTest, DumpCarriesSpansLogsAndEventsWithRequestIds) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  rec.Reset();
  rec.SetEnabled(true);
  rec.RecordSpan("proto.round", "round", /*trace_id=*/0x71DE, /*span_id=*/7,
                 /*request_id=*/55, /*start_seconds=*/1.0,
                 /*duration_seconds=*/0.25, /*thread_ordinal=*/3);
  rec.RecordLog("drain.begin grace=2");
  rec.RecordEvent("breaker.open", "mp-endpoint", /*request_id=*/55);
  const std::string json = rec.DumpJson();
  rec.SetEnabled(false);
  EXPECT_NE(json.find("proto.round"), std::string::npos);
  EXPECT_NE(json.find("drain.begin grace=2"), std::string::npos);
  EXPECT_NE(json.find("breaker.open"), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":55"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
}

TEST(FlightRecorderTest, EnablingArmsSpanCaptureWithoutTracer) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  rec.Reset();
  rec.SetEnabled(true);
  ASSERT_FALSE(Tracer::Global().enabled());
  { ScopedSpan span = ScopedSpan::Root("flightrec.armed.span"); }
  const std::string json = rec.DumpJson();
  rec.SetEnabled(false);
  EXPECT_NE(json.find("flightrec.armed.span"), std::string::npos)
      << "enabled recorder must capture spans even with the tracer off";
}

TEST(FlightRecorderTest, RingSurvivesWraparound) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  rec.Reset();
  rec.SetEnabled(true);
  for (size_t i = 0; i < obs::FlightRecorder::kCapacity + 32; ++i) {
    rec.RecordEvent("wrap.event", "n", /*request_id=*/i + 1);
  }
  const std::string json = rec.DumpJson();
  rec.SetEnabled(false);
  // The newest entry survived; the overwritten head is gone, not torn.
  EXPECT_NE(json.find("\"request_id\":" +
                      std::to_string(obs::FlightRecorder::kCapacity + 32)),
            std::string::npos);
  EXPECT_EQ(json.find("\"request_id\":1}"), std::string::npos);
  // Sequential writers publish before the ring can lap them: the CAS
  // slot claim must never drop a record on this path.
  EXPECT_EQ(rec.dropped_records(), 0u);
}

TEST(FlightRecorderTest, TriggerDumpWritesFileAndCountsIt) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  rec.Reset();
  rec.SetEnabled(true);
  const std::string path =
      ::testing::TempDir() + "/flightrec_trigger_test.json";
  rec.SetDumpPath(path);
  rec.RecordEvent("deadline.shed", "kMpProcessRound", /*request_id=*/99);
  const uint64_t dumps0 = rec.dumps();
  rec.TriggerDump("unit-test");
  EXPECT_EQ(rec.dumps(), dumps0 + 1);
  rec.SetDumpPath("");
  rec.SetEnabled(false);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("deadline.shed"), std::string::npos);
  EXPECT_NE(contents.str().find("flightrec.dump"), std::string::npos)
      << "the dump must record its own trigger reason event";
  EXPECT_NE(contents.str().find("\"request_id\":99"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ConcurrentWritersAndDumperStayConsistent) {
  obs::FlightRecorder& rec = obs::FlightRecorder::Global();
  rec.Reset();
  rec.SetEnabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&rec, &stop, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        rec.RecordEvent("storm.event", "concurrent",
                        static_cast<uint64_t>(t) * 1000000 + ++i);
        rec.RecordLog("storm line");
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    const std::string json = rec.DumpJson();
    EXPECT_NE(json.find("traceEvents"), std::string::npos);
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  rec.SetEnabled(false);
  rec.Reset();
}

}  // namespace
}  // namespace ppstream
