// Tests for distance correlation and the accuracy metric.

#include <gtest/gtest.h>

#include <cmath>

#include "crypto/permutation.h"
#include "stats/dcor.h"
#include "util/rng.h"

namespace ppstream {
namespace {

TEST(DcorTest, IdenticalSequencesGiveOne) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8};
  auto d = DistanceCorrelation(x, x);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value(), 1.0, 1e-12);
}

TEST(DcorTest, LinearDependenceGivesOne) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {-3, -6, -9, -12, -15};  // y = -3x
  auto d = DistanceCorrelation(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value(), 1.0, 1e-12);
}

TEST(DcorTest, IndependentSequencesGiveNearZero) {
  Rng rng(1);
  std::vector<double> x(2000), y(2000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextGaussian();
    y[i] = rng.NextGaussian();
  }
  auto d = DistanceCorrelation(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_LT(d.value(), 0.08);
}

TEST(DcorTest, DetectsNonLinearDependence) {
  // Pearson correlation of (x, x^2) on symmetric x is ~0; dCor is not.
  Rng rng(2);
  std::vector<double> x(500), y(500);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextUniform(-1, 1);
    y[i] = x[i] * x[i];
  }
  auto d = DistanceCorrelation(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d.value(), 0.3);
}

TEST(DcorTest, PermutationReducesCorrelationMoreForLongerTensors) {
  // The core claim of paper Table VI: dCor(v, P(v)) shrinks as |v| grows.
  SecureRng prng = SecureRng::FromSeed(3);
  Rng rng(4);
  double prev = 1.0;
  for (size_t len : {32u, 256u, 2048u}) {
    std::vector<double> v(len);
    for (auto& e : v) e = rng.NextGaussian();
    Permutation p = Permutation::Random(len, prng);
    auto d = DistanceCorrelation(v, p.Apply(v));
    ASSERT_TRUE(d.ok());
    EXPECT_LT(d.value(), prev) << "len=" << len;
    prev = d.value();
  }
  EXPECT_LT(prev, 0.1);  // long tensors leak little
}

TEST(DcorTest, ConstantSequenceGivesZero) {
  std::vector<double> x = {5, 5, 5, 5};
  std::vector<double> y = {1, 2, 3, 4};
  auto d = DistanceCorrelation(x, y);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d.value(), 0.0);
}

TEST(DcorTest, RejectsBadInputs) {
  EXPECT_FALSE(DistanceCorrelation({1}, {1}).ok());
  EXPECT_FALSE(DistanceCorrelation({1, 2}, {1, 2, 3}).ok());
}

TEST(AccuracyTest, ConfusionMatrixDefinition) {
  // TP=2 TN=1 FP=1 FN=1 -> (2+1)/5.
  auto acc = BinaryConfusionAccuracy({1, 1, 0, 1, 0}, {1, 1, 0, 0, 1});
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(acc.value(), 0.6);
}

TEST(AccuracyTest, RejectsNonBinaryAndMismatched) {
  EXPECT_FALSE(BinaryConfusionAccuracy({2}, {1}).ok());
  EXPECT_FALSE(BinaryConfusionAccuracy({1}, {3}).ok());
  EXPECT_FALSE(BinaryConfusionAccuracy({1, 0}, {1}).ok());
  EXPECT_FALSE(BinaryConfusionAccuracy({}, {}).ok());
}

TEST(StatsTest, MeanAndStdDev) {
  std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

}  // namespace
}  // namespace ppstream
