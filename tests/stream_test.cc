// Tests for the stream substrate: channels, stages, pipelines, and the
// end-to-end PP-Stream engine (pipelined protocol == synchronous protocol).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "core/protocol.h"
#include "nn/layers.h"
#include "stream/channel.h"
#include "stream/circuit_breaker.h"
#include "stream/engine.h"
#include "stream/message.h"
#include "stream/pipeline.h"
#include "stream/retry_policy.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace ppstream {
namespace {

// ------------------------------------------------------------- channel

TEST(ChannelTest, FifoOrder) {
  Channel<int> chan(4);
  chan.Send(1);
  chan.Send(2);
  chan.Send(3);
  EXPECT_EQ(chan.Recv(), 1);
  EXPECT_EQ(chan.Recv(), 2);
  EXPECT_EQ(chan.Recv(), 3);
}

TEST(ChannelTest, RecvAfterCloseDrainsThenEnds) {
  Channel<int> chan(4);
  chan.Send(7);
  chan.Close();
  EXPECT_EQ(chan.Recv(), 7);
  EXPECT_EQ(chan.Recv(), std::nullopt);
  EXPECT_FALSE(chan.Send(8));
}

TEST(ChannelTest, BackpressureBlocksSender) {
  Channel<int> chan(1);
  chan.Send(1);
  std::atomic<bool> sent{false};
  std::thread sender([&] {
    chan.Send(2);
    sent = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(sent.load()) << "send should block while full";
  EXPECT_EQ(chan.Recv(), 1);
  sender.join();
  EXPECT_TRUE(sent.load());
  EXPECT_EQ(chan.Recv(), 2);
}

TEST(ChannelTest, SendAfterCloseFailsAndDropsItem) {
  Channel<int> chan(2);
  chan.Close();
  EXPECT_FALSE(chan.Send(1));
  EXPECT_FALSE(chan.Send(2));  // still closed, still rejected
  EXPECT_EQ(chan.size(), 0u);  // nothing enqueued
  EXPECT_EQ(chan.Recv(), std::nullopt);
}

TEST(ChannelTest, CloseWakesBlockedSendersAndReceivers) {
  Channel<int> chan(1);
  chan.Send(1);  // fill to capacity
  std::atomic<int> blocked_send_result{-1};
  std::thread sender([&] { blocked_send_result = chan.Send(2) ? 1 : 0; });
  Channel<int> empty_chan(1);
  std::atomic<bool> recv_got_nullopt{false};
  std::thread receiver(
      [&] { recv_got_nullopt = !empty_chan.Recv().has_value(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  chan.Close();
  empty_chan.Close();
  sender.join();
  receiver.join();
  EXPECT_EQ(blocked_send_result.load(), 0) << "blocked sender must fail";
  EXPECT_TRUE(recv_got_nullopt.load()) << "blocked receiver must wake";
  // The pre-close item stays receivable (close drains, then ends).
  EXPECT_EQ(chan.Recv(), 1);
  EXPECT_EQ(chan.Recv(), std::nullopt);
}

TEST(ChannelTest, CapacityOneBackpressurePreservesOrder) {
  Channel<int> chan(1);
  constexpr int kItems = 500;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) chan.Send(i);
    chan.Close();
  });
  // The consumer must observe exactly 0..kItems-1 in order even though the
  // producer blocks on every send.
  int expected = 0;
  while (auto v = chan.Recv()) {
    EXPECT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(ChannelTest, PoisonedMessagePassesThrough) {
  // Channels are payload-agnostic: a poisoned StreamMessage is delivered
  // like any other, status and origin intact.
  Channel<StreamMessage> chan(2);
  StreamMessage msg;
  msg.request_id = 42;
  msg.payload = {1, 2, 3};
  msg.Poison("some-stage", Status::Internal("exhausted retries"));
  EXPECT_TRUE(chan.Send(std::move(msg)));
  auto out = chan.Recv();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->poisoned());
  EXPECT_EQ(out->request_id, 42u);
  EXPECT_EQ(out->failed_stage, "some-stage");
  EXPECT_EQ(out->status.code(), StatusCode::kInternal);
  EXPECT_TRUE(out->payload.empty()) << "Poison() must drop the payload";
}

TEST(ChannelTest, ManyProducersManyConsumers) {
  Channel<int> chan(8);
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&chan, p] {
      for (int i = 0; i < kPerProducer; ++i) chan.Send(p * kPerProducer + i);
    });
  }
  std::atomic<int> total{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = chan.Recv()) total += 1;
    });
  }
  for (auto& t : producers) t.join();
  chan.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(total.load(), kPerProducer * kProducers);
}

// ------------------------------------------------------------- messages

TEST(MessageTest, DoubleTensorRoundTrip) {
  DoubleTensor t(Shape{2, 3}, {1.5, -2.25, 0, 42, 1e-9, -1e9});
  auto back = DeserializeDoubleTensor(SerializeDoubleTensor(t));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().shape(), t.shape());
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_DOUBLE_EQ(back.value()[i], t[i]);
  }
}

TEST(MessageTest, CiphertextVectorRoundTrip) {
  std::vector<Ciphertext> v;
  for (int i = 0; i < 5; ++i) {
    v.push_back(Ciphertext{BigInt(int64_t{1} << (i * 7))});
  }
  auto back = DeserializeCiphertexts(SerializeCiphertexts(v));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(back.value()[i].value.Compare(v[i].value), 0);
  }
}

TEST(MessageTest, TruncatedPayloadFails) {
  DoubleTensor t(Shape{4}, {1, 2, 3, 4});
  auto bytes = SerializeDoubleTensor(t);
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(DeserializeDoubleTensor(bytes).ok());
}

TEST(MessageTest, CiphertextsTruncatedAtEveryLengthFails) {
  std::vector<Ciphertext> v;
  for (int i = 0; i < 3; ++i) {
    v.push_back(Ciphertext{BigInt(int64_t{3} << (i * 9))});
  }
  const auto bytes = SerializeCiphertexts(v);
  // Every proper prefix must fail cleanly: the deserializer may never
  // crash or read out of bounds on a cut-off wire payload.
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DeserializeCiphertexts(prefix).ok()) << "prefix " << len;
  }
}

TEST(MessageTest, CiphertextsSurviveInjectedCorruption) {
  std::vector<Ciphertext> v;
  for (int i = 0; i < 4; ++i) {
    v.push_back(Ciphertext{BigInt(int64_t{5} << (i * 8))});
  }
  const auto clean = SerializeCiphertexts(v);

  FaultInjector injector(/*seed=*/99);
  FaultRule rule;
  rule.site_pattern = "net.";
  rule.kind = FaultKind::kCorruption;
  rule.every_nth = 1;
  rule.corrupt_bytes = 3;
  injector.AddRule(rule);

  // Each round corrupts different byte positions; every outcome must be a
  // Status (frequently non-OK), never UB. A flip can land in ciphertext
  // bytes and still parse — that is the obfuscated payload's job to absorb.
  for (int round = 0; round < 64; ++round) {
    std::vector<uint8_t> bytes = clean;
    ASSERT_TRUE(injector.Corrupt("net.recv", bytes));
    auto result = DeserializeCiphertexts(bytes);
    if (result.ok()) {
      EXPECT_EQ(result.value().size(), v.size());
    }
  }
  EXPECT_EQ(injector.stats().corruptions, 64u);
}

// ------------------------------------------------------------- pipeline

StreamMessage IntMessage(uint64_t id, int64_t v) {
  StreamMessage msg;
  msg.request_id = id;
  BufferWriter w;
  w.WriteI64(v);
  msg.payload = w.TakeBytes();
  return msg;
}

int64_t IntPayload(const StreamMessage& msg) {
  BufferReader r(msg.payload);
  auto v = r.ReadI64();
  PPS_CHECK(v.ok());
  return v.value();
}

std::unique_ptr<Stage> AddingStage(const std::string& name, int64_t delta) {
  return std::make_unique<Stage>(
      name, 1,
      [delta](StreamMessage msg, ThreadPool&) -> Result<StreamMessage> {
        return IntMessage(msg.request_id, IntPayload(msg) + delta);
      });
}

TEST(PipelineTest, StagesComposeInOrder) {
  Pipeline pipeline(2);
  pipeline.AddStage(AddingStage("a", 1));
  pipeline.AddStage(AddingStage("b", 10));
  pipeline.AddStage(AddingStage("c", 100));
  ASSERT_TRUE(pipeline.Start().ok());
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(pipeline.Feed(IntMessage(i, static_cast<int64_t>(i))).ok());
  }
  for (uint64_t i = 0; i < 5; ++i) {
    auto result = pipeline.NextResult();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->request_id, i);  // FIFO end to end
    EXPECT_EQ(IntPayload(*result), static_cast<int64_t>(i) + 111);
  }
  pipeline.Shutdown();
  EXPECT_EQ(pipeline.stage(0).metrics().messages_processed, 5u);
  EXPECT_EQ(pipeline.stage(2).metrics().errors, 0u);
}

TEST(PipelineTest, FailingMessageIsPoisonedNotDropped) {
  // A failed request is not silently dropped: it reaches the tail as a
  // poisoned message naming the failing stage, so clients awaiting N
  // results never hang.
  Pipeline pipeline(2);
  pipeline.AddStage(std::make_unique<Stage>(
      "flaky", 1,
      [](StreamMessage msg, ThreadPool&) -> Result<StreamMessage> {
        if (msg.request_id == 1) return Status::Internal("boom");
        return msg;
      }));
  pipeline.AddStage(AddingStage("downstream", 0));
  ASSERT_TRUE(pipeline.Start().ok());
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(pipeline.Feed(IntMessage(i, 0)).ok());
  }
  for (uint64_t i = 0; i < 3; ++i) {
    auto result = pipeline.NextResult();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->request_id, i);  // FIFO, failures included
    if (i == 1) {
      EXPECT_TRUE(result->poisoned());
      EXPECT_EQ(result->failed_stage, "flaky");
      EXPECT_EQ(result->status.code(), StatusCode::kInternal);
      EXPECT_TRUE(result->payload.empty());
    } else {
      EXPECT_FALSE(result->poisoned());
    }
  }
  pipeline.Shutdown();
  EXPECT_EQ(pipeline.stage(0).metrics().errors, 1u);
  // The downstream stage forwarded (not processed) the tombstone.
  EXPECT_EQ(pipeline.stage(1).metrics().poisoned_forwarded, 1u);
  EXPECT_EQ(pipeline.stage(1).metrics().messages_processed, 2u);
}

TEST(PipelineTest, TransientFailureIsRetried) {
  // A stage that fails on the first attempt for each message succeeds with
  // max_retries = 1 (AF-Stream-style re-execution).
  auto fail_once = std::make_shared<std::set<uint64_t>>();
  Pipeline pipeline(2);
  pipeline.AddStage(std::make_unique<Stage>(
      "flaky-once", 1,
      [fail_once](StreamMessage msg, ThreadPool&) -> Result<StreamMessage> {
        if (fail_once->insert(msg.request_id).second) {
          return Status::Internal("transient failure");
        }
        return msg;
      },
      /*max_retries=*/1));
  ASSERT_TRUE(pipeline.Start().ok());
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(pipeline.Feed(IntMessage(i, 0)).ok());
  }
  for (uint64_t i = 0; i < 3; ++i) {
    auto result = pipeline.NextResult();
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->request_id, i);
  }
  pipeline.Shutdown();
  EXPECT_EQ(pipeline.stage(0).metrics().retries, 3u);
  EXPECT_EQ(pipeline.stage(0).metrics().errors, 0u);
}

TEST(PipelineTest, ExhaustedRetriesPoisonMessage) {
  Pipeline pipeline(2);
  pipeline.AddStage(std::make_unique<Stage>(
      "always-fails", 1,
      [](StreamMessage, ThreadPool&) -> Result<StreamMessage> {
        return Status::Internal("permanent failure");
      },
      /*max_retries=*/2));
  ASSERT_TRUE(pipeline.Start().ok());
  ASSERT_TRUE(pipeline.Feed(IntMessage(0, 0)).ok());
  auto result = pipeline.NextResult();
  ASSERT_TRUE(result.has_value()) << "failure must surface, not vanish";
  EXPECT_TRUE(result->poisoned());
  EXPECT_EQ(result->failed_stage, "always-fails");
  pipeline.Shutdown();
  EXPECT_EQ(pipeline.stage(0).metrics().errors, 1u);
  EXPECT_EQ(pipeline.stage(0).metrics().retries, 2u);
}

TEST(PipelineTest, MetricsAreReadableMidRun) {
  // metrics() is a snapshot of atomic counters, safe to poll while the
  // stage is processing (the seed documented "read after Join()" only, but
  // PpStreamEngine::pipeline() exposes live stages).
  Channel<StreamMessage> slow_gate(1);
  // Capacity covers the whole batch so the tail never backpressures the
  // stage while the test still holds results back.
  Pipeline pipeline(16);
  pipeline.AddStage(std::make_unique<Stage>(
      "slow", 1,
      [&slow_gate](StreamMessage msg, ThreadPool&) -> Result<StreamMessage> {
        slow_gate.Recv();  // block until the test releases the message
        return msg;
      }));
  ASSERT_TRUE(pipeline.Start().ok());
  constexpr uint64_t kRequests = 8;
  std::thread feeder([&] {
    for (uint64_t i = 0; i < kRequests; ++i) {
      ASSERT_TRUE(pipeline.Feed(IntMessage(i, 0)).ok());
    }
  });
  uint64_t last_seen = 0;
  for (uint64_t i = 0; i < kRequests; ++i) {
    slow_gate.Send(StreamMessage{});  // release one message
    // Poll mid-run: values must be readable and monotone.
    const StageMetrics snapshot = pipeline.stage(0).metrics();
    EXPECT_GE(snapshot.messages_processed, last_seen);
    last_seen = snapshot.messages_processed;
    EXPECT_EQ(snapshot.errors, 0u);
  }
  for (uint64_t i = 0; i < kRequests; ++i) {
    EXPECT_TRUE(pipeline.NextResult().has_value());
  }
  feeder.join();
  pipeline.Shutdown();
  EXPECT_EQ(pipeline.stage(0).metrics().messages_processed, kRequests);
}

TEST(PipelineTest, RetryBusyTimeIsCounted) {
  // Attempt time (including failed attempts) lands in busy_seconds;
  // backoff sleeps do not.
  auto fail_once = std::make_shared<std::set<uint64_t>>();
  RetryPolicy policy;
  policy.max_retries = 1;
  policy.initial_backoff_seconds = 0.2;  // would dominate if miscounted
  policy.max_backoff_seconds = 0.2;
  policy.jitter = 0;
  Pipeline pipeline(2);
  pipeline.AddStage(std::make_unique<Stage>(
      "flaky-once", 1,
      [fail_once](StreamMessage msg, ThreadPool&) -> Result<StreamMessage> {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        if (fail_once->insert(msg.request_id).second) {
          return Status::Internal("transient failure");
        }
        return msg;
      },
      policy));
  ASSERT_TRUE(pipeline.Start().ok());
  ASSERT_TRUE(pipeline.Feed(IntMessage(0, 0)).ok());
  ASSERT_TRUE(pipeline.NextResult().has_value());
  pipeline.Shutdown();
  const StageMetrics metrics = pipeline.stage(0).metrics();
  EXPECT_EQ(metrics.retries, 1u);
  // Two ~5ms attempts: busy time covers both but excludes the 200ms sleep.
  EXPECT_GE(metrics.busy_seconds, 0.008);
  EXPECT_LT(metrics.busy_seconds, 0.15);
}

TEST(PipelineTest, StartWithoutStagesFails) {
  Pipeline pipeline;
  EXPECT_FALSE(pipeline.Start().ok());
}

// --------------------------------------------------------- retry policy

TEST(RetryPolicyTest, PreExpiredDeadlineFailsWithoutInvokingTheStage) {
  // A message whose deadline already passed before the first attempt must
  // be failed up front — never handed to the (possibly expensive) stage.
  auto invocations = std::make_shared<std::atomic<int>>(0);
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.deadline_seconds = 0.001;
  Pipeline pipeline(2);
  pipeline.AddStage(std::make_unique<Stage>(
      "never-runs", 1,
      [invocations](StreamMessage msg, ThreadPool&) -> Result<StreamMessage> {
        invocations->fetch_add(1);
        return msg;
      },
      policy));
  ASSERT_TRUE(pipeline.Start().ok());
  StreamMessage msg = IntMessage(0, 0);
  msg.submit_time_seconds = StreamClockSeconds() - 1.0;  // long expired
  ASSERT_TRUE(pipeline.Feed(std::move(msg)).ok());
  auto result = pipeline.NextResult();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->poisoned());
  EXPECT_EQ(result->status.code(), StatusCode::kDeadlineExceeded);
  pipeline.Shutdown();
  EXPECT_EQ(invocations->load(), 0);
  EXPECT_EQ(pipeline.stage(0).metrics().deadline_exceeded, 1u);
}

TEST(RetryPolicyTest, FromMaxRetriesZeroFailsFastEvenWithJitter) {
  RetryPolicy policy = RetryPolicy::FromMaxRetries(0);
  policy.jitter = 0.9;  // jitter without a base backoff must not sleep
  Rng rng(11);
  EXPECT_EQ(policy.BackoffSeconds(1, rng), 0.0);
  EXPECT_EQ(policy.BackoffSeconds(100, rng), 0.0);

  Pipeline pipeline(2);
  pipeline.AddStage(std::make_unique<Stage>(
      "fail-fast", 1,
      [](StreamMessage, ThreadPool&) -> Result<StreamMessage> {
        return Status::Internal("boom");
      },
      policy));
  ASSERT_TRUE(pipeline.Start().ok());
  ASSERT_TRUE(pipeline.Feed(IntMessage(0, 0)).ok());
  auto result = pipeline.NextResult();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->poisoned());
  pipeline.Shutdown();
  EXPECT_EQ(pipeline.stage(0).metrics().retries, 0u);
}

TEST(RetryPolicyTest, BackoffSaturatesAtCapWithoutOverflow) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.01;
  policy.backoff_multiplier = 10.0;
  policy.max_backoff_seconds = 0.05;
  policy.jitter = 0;
  Rng rng(13);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1, rng), 0.01);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2, rng), 0.05);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3, rng), 0.05);
  // Huge retry counts would overflow the exponential; the cap must hold
  // and the result must stay finite.
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(5000, rng), 0.05);

  // With full jitter the sleep stays within [0, cap].
  policy.jitter = 1.0;
  for (int retry = 1; retry <= 64; ++retry) {
    const double backoff = policy.BackoffSeconds(retry, rng);
    EXPECT_GE(backoff, 0.0);
    EXPECT_LE(backoff, 0.05);
  }
}

// ------------------------------------------------------- circuit breaker

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresOnly) {
  double now = 0;
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.open_seconds = 1.0;
  options.name = "unit";
  CircuitBreaker breaker(options, [&now] { return now; });

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // Failures interleaved with a success never reach the threshold.
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.opens(), 0u);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneProbeAfterCooldown) {
  double now = 0;
  CircuitBreaker::Options options;
  options.failure_threshold = 1;
  options.open_seconds = 1.0;
  CircuitBreaker breaker(options, [&now] { return now; });

  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // trips immediately (threshold 1)
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow()) << "open breaker must refuse";
  now = 0.5;
  EXPECT_FALSE(breaker.Allow()) << "cooldown not over yet";

  now = 1.5;
  EXPECT_TRUE(breaker.Allow());  // the half-open probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow()) << "only one probe may be in flight";
  breaker.RecordFailure();  // probe failed: reopen, cooldown re-arms
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.Allow());

  now = 3.0;
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordSuccess();  // probe succeeded: closed again
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

// ------------------------------------------------------------- engine

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(7);
    auto pair = Paillier::GenerateKeyPair(256, rng);
    ASSERT_TRUE(pair.ok());
    keys_ = new PaillierKeyPair(std::move(pair).value());

    Rng mrng(8);
    Model model(Shape{4}, "engine");
    PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 6, mrng)));
    PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
    PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 3, mrng)));
    PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
    auto plan = CompilePlan(model, 1000);
    ASSERT_TRUE(plan.ok());
    plan_ = new std::shared_ptr<InferencePlan>(
        std::make_shared<InferencePlan>(std::move(plan).value()));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete plan_;
  }

  static PaillierKeyPair* keys_;
  static std::shared_ptr<InferencePlan>* plan_;
};

PaillierKeyPair* EngineTest::keys_ = nullptr;
std::shared_ptr<InferencePlan>* EngineTest::plan_ = nullptr;

TEST_F(EngineTest, PipelinedMatchesSynchronousProtocol) {
  auto mp = std::make_shared<ModelProvider>(*plan_, keys_->public_key, 11);
  auto dp = std::make_shared<DataProvider>(*plan_, *keys_, 13);
  EngineConfig config;
  config.stage_threads = {1, 2, 1, 2, 1};  // 2R+1 = 5 stages
  PpStreamEngine engine(mp, dp, config);
  ASSERT_TRUE(engine.Start().ok());

  Rng rng(14);
  std::vector<DoubleTensor> inputs;
  for (int i = 0; i < 6; ++i) {
    DoubleTensor x{Shape{4}};
    for (int64_t j = 0; j < 4; ++j) x[j] = rng.NextUniform(-2, 2);
    inputs.push_back(std::move(x));
    ASSERT_TRUE(engine.Submit(static_cast<uint64_t>(i), inputs.back()).ok());
  }

  for (int i = 0; i < 6; ++i) {
    auto result = engine.NextResult();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().request_id, static_cast<uint64_t>(i));
    auto expected =
        RunScaledPlainInference(**plan_, inputs[result.value().request_id]);
    ASSERT_TRUE(expected.ok());
    for (int64_t j = 0; j < expected.value().NumElements(); ++j) {
      EXPECT_DOUBLE_EQ(result.value().output[j], expected.value()[j]);
    }
  }
  engine.Shutdown();

  // Every stage saw every message.
  for (size_t s = 0; s < engine.pipeline().NumStages(); ++s) {
    EXPECT_EQ(engine.pipeline().stage(s).metrics().messages_processed, 6u)
        << "stage " << s;
    EXPECT_EQ(engine.pipeline().stage(s).metrics().errors, 0u);
  }
}

TEST_F(EngineTest, RejectsWrongThreadVectorSize) {
  auto mp = std::make_shared<ModelProvider>(*plan_, keys_->public_key, 15);
  auto dp = std::make_shared<DataProvider>(*plan_, *keys_, 16);
  EngineConfig config;
  config.stage_threads = {1, 2};  // wrong: plan needs 5
  PpStreamEngine engine(mp, dp, config);
  EXPECT_FALSE(engine.Start().ok());
}

TEST_F(EngineTest, NumPipelineStagesFormula) {
  EXPECT_EQ(NumPipelineStages(**plan_), 2 * (*plan_)->NumRounds() + 1);
}

TEST_F(EngineTest, WithoutPartitioningStillCorrect) {
  auto mp = std::make_shared<ModelProvider>(*plan_, keys_->public_key, 17);
  auto dp = std::make_shared<DataProvider>(*plan_, *keys_, 18);
  EngineConfig config;
  config.tensor_partitioning = false;
  PpStreamEngine engine(mp, dp, config);
  ASSERT_TRUE(engine.Start().ok());
  DoubleTensor x(Shape{4}, {0.5, -1, 1.5, 0});
  ASSERT_TRUE(engine.Submit(99, x).ok());
  auto result = engine.NextResult();
  ASSERT_TRUE(result.ok());
  auto expected = RunScaledPlainInference(**plan_, x);
  ASSERT_TRUE(expected.ok());
  for (int64_t j = 0; j < expected.value().NumElements(); ++j) {
    EXPECT_DOUBLE_EQ(result.value().output[j], expected.value()[j]);
  }
  engine.Shutdown();
}

}  // namespace
}  // namespace ppstream
