// Tests for the EzPC-style MPC baseline: fixed-point sharing, Beaver
// multiplication, boolean circuits, garbling, and end-to-end secure
// inference vs the plaintext model.

#include <gtest/gtest.h>

#include <cmath>

#include "mpc/circuit.h"
#include "mpc/ezpc.h"
#include "mpc/garbled.h"
#include "mpc/share.h"
#include "nn/layers.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace ppstream {
namespace {

// ------------------------------------------------------------- shares

TEST(FixedTest, EncodeDecodeRoundTrip) {
  for (double v : {0.0, 1.0, -1.0, 3.14159, -271.828, 1e-4}) {
    EXPECT_NEAR(DecodeFixed(EncodeFixed(v)), v, 1.0 / (1 << kMpcFracBits));
  }
}

TEST(ShareTest, ReconstructionAndLinearity) {
  Rng rng(1);
  const Ring64 x = EncodeFixed(2.5), y = EncodeFixed(-1.25);
  SharedValue sx = MakeShares(x, rng), sy = MakeShares(y, rng);
  EXPECT_EQ(sx.Reconstruct(), x);
  EXPECT_EQ(AddShares(sx, sy).Reconstruct(), x + y);
  EXPECT_EQ(SubShares(sx, sy).Reconstruct(), x - y);
  EXPECT_EQ(ScaleShares(sx, 3).Reconstruct(), x * 3);
  EXPECT_EQ(AddConst(sx, 7).Reconstruct(), x + 7);
}

TEST(ShareTest, SharesLookRandom) {
  Rng rng(2);
  // The same secret shared twice gives unrelated s0.
  SharedValue a = MakeShares(42, rng);
  SharedValue b = MakeShares(42, rng);
  EXPECT_NE(a.s0, b.s0);
}

TEST(BeaverTest, MultiplicationIsCorrect) {
  Rng rng(3);
  TripleDealer dealer(4);
  MpcMetrics metrics;
  for (int i = 0; i < 20; ++i) {
    const int64_t xv = static_cast<int64_t>(rng.NextBounded(2000)) - 1000;
    const int64_t yv = static_cast<int64_t>(rng.NextBounded(2000)) - 1000;
    SharedValue x = MakeShares(static_cast<Ring64>(xv), rng);
    SharedValue y = MakeShares(static_cast<Ring64>(yv), rng);
    SharedValue z = MulShares(x, y, dealer.Next(), &metrics);
    EXPECT_EQ(static_cast<int64_t>(z.Reconstruct()), xv * yv);
  }
  EXPECT_EQ(metrics.triples_used, 20u);
  EXPECT_EQ(metrics.rounds, 0u);  // rounds are batched per layer upstream
  EXPECT_GT(metrics.bytes_sent, 0u);
}

TEST(TruncateTest, ApproximatesArithmeticShift) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const double v = (static_cast<double>(rng.NextBounded(20000)) - 10000) /
                     37.0;
    SharedValue s = MakeShares(EncodeFixed(v * v < 0 ? v : v), rng);
    // Emulate a post-multiplication value at double scale.
    SharedValue wide = ScaleShares(s, Ring64{1} << kMpcFracBits);
    SharedValue trunc = TruncateShares(wide);
    // SecureML local truncation has an off-by-one (LSB) error.
    const double back = DecodeFixed(trunc.Reconstruct());
    EXPECT_NEAR(back, v, 3.0 / (1 << kMpcFracBits)) << v;
  }
}

// ------------------------------------------------------------- circuits

TEST(CircuitTest, AdderMatchesRingAddition) {
  Circuit c;
  auto a = c.AddWires(64);
  auto b = c.AddWires(64);
  c.garbler_inputs = a;
  c.evaluator_inputs = b;
  c.outputs = BuildAdder(&c, a, b, false);

  Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const uint64_t x = rng.NextU64(), y = rng.NextU64();
    auto out = EvaluateCircuitPlain(c, ToBits(x), ToBits(y));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(FromBits(out.value()), x + y);
  }
}

TEST(CircuitTest, SubtractorMatchesRingSubtraction) {
  Circuit c;
  auto a = c.AddWires(64);
  auto b = c.AddWires(64);
  c.garbler_inputs = a;
  c.evaluator_inputs = b;
  c.outputs = BuildSubtractor(&c, a, b);

  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const uint64_t x = rng.NextU64(), y = rng.NextU64();
    auto out = EvaluateCircuitPlain(c, ToBits(x), ToBits(y));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(FromBits(out.value()), x - y);
  }
}

TEST(CircuitTest, ReluShareCircuitPlainEvaluation) {
  const Circuit c = BuildReluShareCircuit(64);
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const int64_t x =
        static_cast<int64_t>(rng.NextU64()) / 1024;  // avoid overflow edge
    const Ring64 x0 = rng.NextU64();
    const Ring64 x1 = static_cast<Ring64>(x) - x0;
    const Ring64 r = rng.NextU64();
    std::vector<bool> g_bits = ToBits(x0);
    std::vector<bool> r_bits = ToBits(r);
    g_bits.insert(g_bits.end(), r_bits.begin(), r_bits.end());
    auto out = EvaluateCircuitPlain(c, g_bits, ToBits(x1));
    ASSERT_TRUE(out.ok());
    const Ring64 expected =
        (x > 0 ? static_cast<Ring64>(x) : Ring64{0}) - r;
    EXPECT_EQ(FromBits(out.value()), expected) << "x=" << x;
  }
}

TEST(CircuitTest, GateCountsAreReasonable) {
  const Circuit c = BuildReluShareCircuit(64);
  EXPECT_GT(c.AndCount(), 150);   // 3 adder chains + mux
  EXPECT_LT(c.AndCount(), 1000);  // sanity upper bound
}

// ------------------------------------------------------------- garbling

TEST(GarbledTest, MatchesPlainEvaluationOnReluCircuit) {
  const Circuit c = BuildReluShareCircuit(64);
  SecureRng grng = SecureRng::FromSeed(9);
  Rng rng(10);
  for (int i = 0; i < 5; ++i) {
    const Ring64 x0 = rng.NextU64();
    const Ring64 x1 = rng.NextU64();
    const Ring64 r = rng.NextU64();
    std::vector<bool> g_bits = ToBits(x0);
    std::vector<bool> r_bits = ToBits(r);
    g_bits.insert(g_bits.end(), r_bits.begin(), r_bits.end());
    const std::vector<bool> e_bits = ToBits(x1);

    auto plain = EvaluateCircuitPlain(c, g_bits, e_bits);
    MpcMetrics metrics;
    auto garbled = RunGarbledCircuit(c, g_bits, e_bits, grng, &metrics);
    ASSERT_TRUE(plain.ok() && garbled.ok()) << garbled.status().ToString();
    EXPECT_EQ(plain.value(), garbled.value());
    EXPECT_GT(metrics.gc_gates_garbled, 0u);
    EXPECT_GT(metrics.gc_bytes, 0u);
    EXPECT_EQ(metrics.ot_transfers, 64u);
  }
}

TEST(GarbledTest, SimpleAndXorGates) {
  Circuit c;
  const int a = c.AddWire();
  const int b = c.AddWire();
  c.garbler_inputs = {a};
  c.evaluator_inputs = {b};
  c.outputs = {c.And(a, b), c.Xor(a, b), c.Not(a)};
  SecureRng rng = SecureRng::FromSeed(11);
  for (int va = 0; va < 2; ++va) {
    for (int vb = 0; vb < 2; ++vb) {
      auto out = RunGarbledCircuit(c, {va != 0}, {vb != 0}, rng, nullptr);
      ASSERT_TRUE(out.ok());
      EXPECT_EQ(out.value()[0], va && vb);
      EXPECT_EQ(out.value()[1], va != vb);
      EXPECT_EQ(out.value()[2], va == 0);
    }
  }
}

TEST(GarbledTest, RejectsWrongInputCounts) {
  Circuit c;
  const int a = c.AddWire();
  c.garbler_inputs = {a};
  c.outputs = {c.Not(a)};
  SecureRng rng = SecureRng::FromSeed(12);
  EXPECT_FALSE(RunGarbledCircuit(c, {}, {}, rng, nullptr).ok());
  EXPECT_FALSE(RunGarbledCircuit(c, {true, false}, {}, rng, nullptr).ok());
}

// ------------------------------------------------------------- EzPC run

Model SmallReluModel(uint64_t seed) {
  Rng rng(seed);
  Model model(Shape{4}, "ezpc-small");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 5, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(5, 3, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  return model;
}

TEST(EzPcTest, SecureInferenceApproximatesPlaintext) {
  Model model = SmallReluModel(13);
  auto runner = EzPcRunner::Create(model);
  ASSERT_TRUE(runner.ok()) << runner.status().ToString();

  Rng rng(14);
  for (int trial = 0; trial < 3; ++trial) {
    DoubleTensor x{Shape{4}};
    for (int64_t i = 0; i < 4; ++i) x[i] = rng.NextUniform(-2, 2);
    MpcMetrics metrics;
    auto secure = runner.value().Infer(x, &metrics);
    ASSERT_TRUE(secure.ok()) << secure.status().ToString();
    auto plain = model.Forward(x);
    ASSERT_TRUE(plain.ok());
    for (int64_t i = 0; i < plain.value().NumElements(); ++i) {
      // Fixed-point (2^-16) error accumulates over two layers.
      EXPECT_NEAR(secure.value()[i], plain.value()[i], 2e-3) << i;
    }
    EXPECT_GT(metrics.triples_used, 0u);
    EXPECT_GT(metrics.gc_gates_garbled, 0u);
    EXPECT_EQ(metrics.protocol_transitions, 2u);  // one ReLU layer
  }
}

TEST(EzPcTest, PredictionsMatchPlaintextModel) {
  Model model = SmallReluModel(15);
  auto runner = EzPcRunner::Create(model);
  ASSERT_TRUE(runner.ok());
  Rng rng(16);
  int agreements = 0;
  for (int trial = 0; trial < 10; ++trial) {
    DoubleTensor x{Shape{4}};
    for (int64_t i = 0; i < 4; ++i) x[i] = rng.NextUniform(-2, 2);
    auto secure = runner.value().Infer(x);
    auto plain = model.Forward(x);
    ASSERT_TRUE(secure.ok() && plain.ok());
    agreements += ArgMax(secure.value()) == ArgMax(plain.value());
  }
  EXPECT_GE(agreements, 9);  // ties at decision boundaries may flip one
}

TEST(EzPcTest, CountsProtocolTransitionsPerReluLayer) {
  Rng rng(17);
  Model model(Shape{3}, "two-relu");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(3, 4, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 4, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 2, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  auto runner = EzPcRunner::Create(model);
  ASSERT_TRUE(runner.ok());
  EXPECT_EQ(runner.value().TotalReluElements(), 8);
  MpcMetrics metrics;
  DoubleTensor x(Shape{3}, {0.5, -0.5, 1.0});
  ASSERT_TRUE(runner.value().Infer(x, &metrics).ok());
  EXPECT_EQ(metrics.protocol_transitions, 4u);  // 2 per ReLU layer
}

TEST(EzPcTest, RejectsUnsupportedLayers) {
  Rng rng(18);
  Model model(Shape{3}, "bad");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(3, 3, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SigmoidLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(3, 2, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  EXPECT_FALSE(EzPcRunner::Create(model).ok());
}

TEST(EzPcTest, RejectsWrongInputShape) {
  Model model = SmallReluModel(19);
  auto runner = EzPcRunner::Create(model);
  ASSERT_TRUE(runner.ok());
  EXPECT_FALSE(runner.value().Infer(DoubleTensor{Shape{5}}).ok());
}

}  // namespace
}  // namespace ppstream
