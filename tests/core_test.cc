// Tests for the PP-Stream core: fixed-point encoding, affine lowering,
// plan compilation, parameter scaling, tensor partitioning, and — most
// importantly — the end-to-end correctness guarantee of §II-C: the
// privacy-preserving protocol must produce exactly the same inference
// result as the (scaled) plain protocol.

#include <gtest/gtest.h>

#include <memory>

#include "core/affine.h"
#include "core/fixed_point.h"
#include "core/partition.h"
#include "core/plan.h"
#include "core/protocol.h"
#include "core/scaling.h"
#include "nn/layers.h"
#include "nn/model_zoo.h"
#include "nn/trainer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace ppstream {
namespace {

constexpr int kTestKeyBits = 256;  // small keys keep tests fast; the
                                   // protocol is key-size independent

DoubleTensor RandomTensor(const Shape& shape, uint64_t seed, double lo = -2,
                          double hi = 2) {
  Rng rng(seed);
  DoubleTensor t{shape};
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    t[i] = rng.NextUniform(lo, hi);
  }
  return t;
}

// Small model: Dense -> ReLU -> Dense -> SoftMax.
Model SmallDenseModel(uint64_t seed) {
  Rng rng(seed);
  Model model(Shape{4}, "small");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 5, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(5, 3, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  return model;
}

// Conv model exercising merged linear stages (Conv+BatchNorm), a mixed
// layer, and Flatten: Conv -> BN -> ReLU -> Flatten -> Dense ->
// ScaledSigmoid -> Dense -> SoftMax.
Model ConvMixedModel(uint64_t seed) {
  Rng rng(seed);
  Model model(Shape{1, 6, 6}, "convmixed");
  Conv2DGeometry g;
  g.in_channels = 1;
  g.in_height = 6;
  g.in_width = 6;
  g.out_channels = 2;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 1;
  g.padding = 0;
  PPS_CHECK_OK(model.Add(Conv2DLayer::Random(g, rng)));
  auto bn = std::make_unique<BatchNormLayer>(2);
  bn->SetStatistics({0.1, -0.2}, {1.5, 0.8});
  bn->SetAffine({1.1, 0.9}, {0.05, -0.05});
  PPS_CHECK_OK(model.Add(std::move(bn)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(std::make_unique<FlattenLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(32, 6, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ScaledSigmoidLayer>(0.8)));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 3, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  return model;
}

// ------------------------------------------------------------ fixed point

TEST(FixedPointTest, QuantizeRoundsToNearest) {
  EXPECT_EQ(QuantizeValue(1.2345, 1000), 1235);  // round-half-away semantics
  EXPECT_EQ(QuantizeValue(-1.2345, 1000), -1235);
  EXPECT_EQ(QuantizeValue(0.0004, 1000), 0);
  EXPECT_EQ(PowerOfTen(0), 1);
  EXPECT_EQ(PowerOfTen(6), 1000000);
  EXPECT_EQ(ScalePower(10, 3).ToDecimalString(), "1000");
}

// ------------------------------------------------------------ affine

TEST(AffineTest, DenseLoweringMatchesFloatLayer) {
  Rng rng(5);
  auto dense = DenseLayer::Random(4, 3, rng);
  const int64_t F = 1000;
  auto op = IntegerAffineLayer::FromLayer(*dense, Shape{4}, F, 1);
  ASSERT_TRUE(op.ok()) << op.status().ToString();

  DoubleTensor x = RandomTensor(Shape{4}, 6);
  // Integer path.
  Tensor<BigInt> xi{Shape{4}};
  for (int64_t i = 0; i < 4; ++i) xi[i] = BigInt(QuantizeValue(x[i], F));
  auto yi = op.value().ApplyPlain(xi);
  ASSERT_TRUE(yi.ok());
  // Float path.
  auto yf = dense->Forward(x);
  ASSERT_TRUE(yf.ok());
  for (int64_t i = 0; i < 3; ++i) {
    const double approx =
        yi.value()[i].ToDouble() / static_cast<double>(F * F);
    EXPECT_NEAR(approx, yf.value()[i], 0.05) << i;
  }
}

TEST(AffineTest, FlattenIsScaleNeutralIdentity) {
  FlattenLayer flatten;
  auto op = IntegerAffineLayer::FromLayer(flatten, Shape{2, 3}, 100, 1);
  ASSERT_TRUE(op.ok());
  EXPECT_EQ(op.value().weight_scale_power(), 0);
  EXPECT_EQ(op.value().output_scale_power(), 1);
  Tensor<BigInt> x{Shape{2, 3}};
  for (int64_t i = 0; i < 6; ++i) x[i] = BigInt(i * 7);
  auto y = op.value().ApplyPlain(x);
  ASSERT_TRUE(y.ok());
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(y.value()[i].Compare(BigInt(i * 7)), 0);
  }
}

TEST(AffineTest, RejectsNonLinearLayers) {
  ReluLayer relu;
  EXPECT_FALSE(IntegerAffineLayer::FromLayer(relu, Shape{4}, 10, 1).ok());
  MaxPool2DLayer pool(2, 2);
  EXPECT_FALSE(
      IntegerAffineLayer::FromLayer(pool, Shape{1, 4, 4}, 10, 1).ok());
}

TEST(AffineTest, MagnitudeBoundIsSound) {
  Rng rng(7);
  auto dense = DenseLayer::Random(6, 4, rng);
  const int64_t F = 100;
  auto op = IntegerAffineLayer::FromLayer(*dense, Shape{6}, F, 1);
  ASSERT_TRUE(op.ok());
  const BigInt input_bound(2 * F);
  const BigInt bound = op.value().OutputMagnitudeBound(input_bound);
  // Evaluate on extreme inputs; result must respect the bound.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    DoubleTensor x = RandomTensor(Shape{6}, seed, -2, 2);
    Tensor<BigInt> xi{Shape{6}};
    for (int64_t i = 0; i < 6; ++i) xi[i] = BigInt(QuantizeValue(x[i], F));
    auto y = op.value().ApplyPlain(xi);
    ASSERT_TRUE(y.ok());
    for (int64_t i = 0; i < 4; ++i) {
      BigInt abs = y.value()[i].IsNegative() ? -y.value()[i] : y.value()[i];
      EXPECT_LE(abs.Compare(bound), 0);
    }
  }
}

// ------------------------------------------------------------ plan

TEST(PlanTest, SmallModelCompiles) {
  Model model = SmallDenseModel(11);
  auto plan = CompilePlan(model, 1000);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().NumRounds(), 2u);
  EXPECT_EQ(plan.value().linear_stages[0].ops.size(), 1u);
  EXPECT_TRUE(plan.value().nonlinear_segments[1].is_final);
  EXPECT_FALSE(plan.value().nonlinear_segments[0].is_final);
}

TEST(PlanTest, MixedLayerIsDecomposed) {
  Model model = ConvMixedModel(12);
  // Without fusion, each primitive layer stays its own op.
  CompileOptions unfused;
  unfused.fusion = planner::FusionPolicy::kNever;
  auto plan = CompilePlan(model, 100, unfused);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Stages: [Conv+BN] [ReLU] [Flatten+Dense+ScalarScale]? No — Flatten and
  // Dense follow ReLU, then ScaledSigmoid decomposes to ScalarScale +
  // Sigmoid. Merged: L(Conv,BN) N(ReLU) L(Flatten,Dense,ScalarScale)
  // N(Sigmoid) L(Dense) N(SoftMax) = 3 rounds.
  EXPECT_EQ(plan.value().NumRounds(), 3u);
  EXPECT_EQ(plan.value().linear_stages[0].ops.size(), 2u);
  EXPECT_EQ(plan.value().linear_stages[1].ops.size(), 3u);
  // Conv+BN: two weighted ops -> scale power 3.
  EXPECT_EQ(plan.value().linear_stages[0].output_scale_power, 3);
  // Flatten (power 0) + Dense + ScalarScale -> 1+0+1+1 = 3.
  EXPECT_EQ(plan.value().linear_stages[1].output_scale_power, 3);
}

TEST(PlanTest, FusionCollapsesLinearChains) {
  Model model = ConvMixedModel(12);
  // The default policy folds Conv*BatchNorm, Flatten*Dense*ScalarScale:
  // none of these compositions adds scalar muls.
  auto plan = CompilePlan(model, 100);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().NumRounds(), 3u);
  EXPECT_EQ(plan.value().linear_stages[0].ops.size(), 1u);
  EXPECT_EQ(plan.value().linear_stages[1].ops.size(), 1u);
  // Fusion never changes the arithmetic, so scale powers are untouched.
  EXPECT_EQ(plan.value().linear_stages[0].output_scale_power, 3);
  EXPECT_EQ(plan.value().linear_stages[1].output_scale_power, 3);
  const auto& stats = plan.value().compile_stats;
  EXPECT_EQ(stats.linear_ops_before_fusion, 6);
  EXPECT_EQ(stats.linear_ops_after_fusion, 3);
  EXPECT_EQ(stats.ops_fused, 3);
  EXPECT_EQ(stats.dead_tensors_removed, 3);
  EXPECT_LE(stats.scalar_muls_after_fusion, stats.scalar_muls_before_fusion);
  // The prepared reference model still lists every primitive layer.
  EXPECT_EQ(plan.value().prepared_model.NumLayers(), 9u);
}

TEST(PlanTest, MaxPoolIsRewritten) {
  Rng rng(13);
  Model model(Shape{1, 4, 4}, "pool");
  Conv2DGeometry g;
  g.in_channels = 1;
  g.in_height = 4;
  g.in_width = 4;
  g.out_channels = 2;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 1;
  g.padding = 1;
  PPS_CHECK_OK(model.Add(Conv2DLayer::Random(g, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<MaxPool2DLayer>(2, 2)));
  PPS_CHECK_OK(model.Add(std::make_unique<FlattenLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(8, 2, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  auto plan = CompilePlan(model, 100);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // No MaxPool anywhere in the prepared model.
  for (size_t i = 0; i < plan.value().prepared_model.NumLayers(); ++i) {
    EXPECT_NE(plan.value().prepared_model.layer(i).kind(),
              LayerKind::kMaxPool2D);
  }
}

TEST(PlanTest, RejectsNonLinearFirstLayer) {
  Model model(Shape{4}, "bad");
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  Rng rng(14);
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 2, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  EXPECT_FALSE(CompilePlan(model, 100).ok());
}

TEST(PlanTest, RejectsLinearLastLayer) {
  Rng rng(15);
  Model model(Shape{4}, "bad");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 2, rng)));
  EXPECT_FALSE(CompilePlan(model, 100).ok());
}

TEST(PlanTest, KeyFitCheck) {
  Model model = SmallDenseModel(16);
  auto plan = CompilePlan(model, 1000000);
  ASSERT_TRUE(plan.ok());
  // A tiny "modulus" cannot hold the plan's magnitudes...
  EXPECT_FALSE(plan.value().CheckFitsKey(BigInt(1) << 16).ok());
  // ...but a 256-bit one easily can.
  EXPECT_TRUE(plan.value().CheckFitsKey(BigInt(1) << 256).ok());
}

// ------------------------------------------------------------ scaling

TEST(ScalingTest, RoundingAtHighPrecisionIsLossless) {
  Model model = SmallDenseModel(17);
  auto rounded = RoundModelParameters(model, 12);
  ASSERT_TRUE(rounded.ok());
  DoubleTensor x = RandomTensor(Shape{4}, 18);
  auto a = model.Forward(x);
  auto b = rounded.value().Forward(x);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t i = 0; i < a.value().NumElements(); ++i) {
    EXPECT_NEAR(a.value()[i], b.value()[i], 1e-9);
  }
}

TEST(ScalingTest, RoundingToZeroDecimalsDegrades) {
  // With |w| < 1 typical of trained nets, f=0 rounds most weights to 0.
  DatasetSplit data = MakeTabularDataset("sc", 8, 150, 50, 4.0, 19);
  Rng rng(20);
  Model model(Shape{8}, "sc");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(8, 8, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(8, 2, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  TrainConfig config;
  config.epochs = 25;
  ASSERT_TRUE(TrainModel(&model, data.train, config).ok());

  auto sel = SelectScalingFactor(model, data.train);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_GE(sel.value().f, 1);  // f=0 cannot match a trained model
  EXPECT_LE(sel.value().f, 6);
  EXPECT_EQ(sel.value().factor, PowerOfTen(sel.value().f));
  // Selected factor keeps accuracy within the threshold (or f hit max).
  if (sel.value().f < 6) {
    EXPECT_NEAR(sel.value().rounded_accuracy,
                sel.value().original_accuracy, 0.0001 + 1e-12);
  }
  // Accuracy trace is monotone "enough": the last entry is the best.
  ASSERT_FALSE(sel.value().accuracy_by_f.empty());
}

// ------------------------------------------------------------ protocol

class ProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(23);
    auto pair = Paillier::GenerateKeyPair(kTestKeyBits, rng);
    ASSERT_TRUE(pair.ok());
    keys_ = new PaillierKeyPair(std::move(pair).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }
  static PaillierKeyPair* keys_;
};

PaillierKeyPair* ProtocolTest::keys_ = nullptr;

TEST_F(ProtocolTest, MatchesScaledPlainReferenceExactly) {
  Model model = SmallDenseModel(29);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  ASSERT_TRUE(plan_or.value().CheckFitsKey(keys_->public_key.n()).ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());

  ModelProvider mp(plan, keys_->public_key, /*obf_seed=*/31);
  DataProvider dp(plan, *keys_, /*enc_seed=*/37);

  for (uint64_t req = 0; req < 3; ++req) {
    DoubleTensor x = RandomTensor(Shape{4}, 100 + req);
    auto protocol_out = RunProtocolInference(mp, dp, req, x);
    ASSERT_TRUE(protocol_out.ok()) << protocol_out.status().ToString();
    auto plain_out = RunScaledPlainInference(*plan, x);
    ASSERT_TRUE(plain_out.ok());
    ASSERT_EQ(protocol_out.value().NumElements(),
              plain_out.value().NumElements());
    for (int64_t i = 0; i < plain_out.value().NumElements(); ++i) {
      // Bit-exact: same integer linear algebra, same double non-linear ops.
      EXPECT_DOUBLE_EQ(protocol_out.value()[i], plain_out.value()[i])
          << "req " << req << " element " << i;
    }
  }
}

TEST_F(ProtocolTest, ConvMixedModelMatchesReference) {
  Model model = ConvMixedModel(41);
  auto plan_or = CompilePlan(model, 100);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  ASSERT_TRUE(plan_or.value().CheckFitsKey(keys_->public_key.n()).ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());

  ModelProvider mp(plan, keys_->public_key, 43);
  DataProvider dp(plan, *keys_, 47);
  DoubleTensor x = RandomTensor(Shape{1, 6, 6}, 48, -1, 1);
  auto protocol_out = RunProtocolInference(mp, dp, 7, x);
  ASSERT_TRUE(protocol_out.ok()) << protocol_out.status().ToString();
  auto plain_out = RunScaledPlainInference(*plan, x);
  ASSERT_TRUE(plain_out.ok());
  for (int64_t i = 0; i < plain_out.value().NumElements(); ++i) {
    EXPECT_DOUBLE_EQ(protocol_out.value()[i], plain_out.value()[i]);
  }
}

TEST_F(ProtocolTest, ScaledOutputApproximatesFloatModel) {
  Model model = SmallDenseModel(51);
  auto plan_or = CompilePlan(model, 100000);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  DoubleTensor x = RandomTensor(Shape{4}, 53);
  auto scaled = RunScaledPlainInference(*plan, x);
  auto floaty = plan->prepared_model.Forward(x);
  ASSERT_TRUE(scaled.ok() && floaty.ok());
  for (int64_t i = 0; i < floaty.value().NumElements(); ++i) {
    EXPECT_NEAR(scaled.value()[i], floaty.value()[i], 1e-3);
  }
}

TEST_F(ProtocolTest, ObfuscationActuallyPermutes) {
  Model model = SmallDenseModel(59);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  ModelProvider mp(plan, keys_->public_key, 61);
  DataProvider dp(plan, *keys_, 67);

  LeakageTranscript transcript;
  DoubleTensor x = RandomTensor(Shape{4}, 68);
  ASSERT_TRUE(RunProtocolInference(mp, dp, 9, x, &transcript).ok());
  ASSERT_EQ(transcript.rounds.size(), 1u);  // one intermediate round
  const auto& round = transcript.rounds[0];
  EXPECT_EQ(round.before_obfuscation.size(), 5u);
  // Same multiset of values, (almost surely) different order.
  auto sorted_before = round.before_obfuscation;
  auto sorted_after = round.after_obfuscation;
  std::sort(sorted_before.begin(), sorted_before.end());
  std::sort(sorted_after.begin(), sorted_after.end());
  EXPECT_EQ(sorted_before, sorted_after);
}

TEST_F(ProtocolTest, FreshPermutationPerRequest) {
  Model model = SmallDenseModel(71);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  ModelProvider mp(plan, keys_->public_key, 73);

  std::vector<Ciphertext> dummy(5,
                                Paillier::EncryptZeroDeterministic(
                                    keys_->public_key));
  ASSERT_TRUE(mp.Obfuscate(1, 0, dummy).ok());
  ASSERT_TRUE(mp.Obfuscate(2, 0, dummy).ok());
  auto p1 = mp.GetStoredPermutationForTesting(1, 0);
  auto p2 = mp.GetStoredPermutationForTesting(2, 0);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_FALSE(p1.value() == p2.value());
}

TEST_F(ProtocolTest, InverseObfuscationIsIdempotentUntilRelease) {
  Model model = SmallDenseModel(79);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  ModelProvider mp(plan, keys_->public_key, 81);
  std::vector<Ciphertext> dummy(5,
                                Paillier::EncryptZeroDeterministic(
                                    keys_->public_key));
  ASSERT_TRUE(mp.Obfuscate(5, 0, dummy).ok());
  // Retry-safe: the same round can be reprocessed (AF-Stream-style
  // at-least-once execution).
  ASSERT_TRUE(mp.InverseObfuscate(5, 1, dummy).ok());
  ASSERT_TRUE(mp.InverseObfuscate(5, 1, dummy).ok());
  EXPECT_EQ(mp.PendingRequestsForTesting(), 1u);
  // The completion ACK drops the request's state; replays now fail.
  mp.ReleaseRequestState(5);
  EXPECT_EQ(mp.PendingRequestsForTesting(), 0u);
  EXPECT_FALSE(mp.InverseObfuscate(5, 1, dummy).ok());
}

TEST_F(ProtocolTest, ProtocolRunReleasesRequestState) {
  Model model = SmallDenseModel(85);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  ModelProvider mp(plan, keys_->public_key, 86);
  DataProvider dp(plan, *keys_, 87);
  DoubleTensor x = RandomTensor(Shape{4}, 88);
  ASSERT_TRUE(RunProtocolInference(mp, dp, 42, x).ok());
  EXPECT_EQ(mp.PendingRequestsForTesting(), 0u)
      << "no permutation state may leak after completion";
}

TEST_F(ProtocolTest, RejectsWrongInputShape) {
  Model model = SmallDenseModel(83);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  DataProvider dp(plan, *keys_, 87);
  EXPECT_FALSE(dp.EncryptInput(DoubleTensor{Shape{5}}).ok());
}

TEST_F(ProtocolTest, AccuracyPreservedOnDataset) {
  // End-to-end: trained model, compiled plan, protocol accuracy equals
  // scaled-plain accuracy (correctness guarantee) over a small test set.
  DatasetSplit data = MakeTabularDataset("acc", 6, 150, 20, 4.0, 89);
  Rng rng(90);
  Model model(Shape{6}, "acc");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 6, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 2, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  TrainConfig config;
  config.epochs = 20;
  ASSERT_TRUE(TrainModel(&model, data.train, config).ok());

  auto plan_or = CompilePlan(model, 10000);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  ModelProvider mp(plan, keys_->public_key, 91);
  DataProvider dp(plan, *keys_, 93);

  size_t protocol_correct = 0, plain_correct = 0;
  for (size_t i = 0; i < data.test.size(); ++i) {
    auto protocol_out =
        RunProtocolInference(mp, dp, i, data.test.samples[i]);
    ASSERT_TRUE(protocol_out.ok());
    auto plain_out = RunScaledPlainInference(*plan, data.test.samples[i]);
    ASSERT_TRUE(plain_out.ok());
    if (ArgMax(protocol_out.value()) == data.test.labels[i]) {
      ++protocol_correct;
    }
    if (ArgMax(plain_out.value()) == data.test.labels[i]) ++plain_correct;
  }
  EXPECT_EQ(protocol_correct, plain_correct);
  EXPECT_GT(static_cast<double>(protocol_correct) / data.test.size(), 0.8);
}

// ------------------------------------------------------------ partitioning

TEST_F(ProtocolTest, PartitionedApplyMatchesSerial) {
  Model model = ConvMixedModel(95);
  auto plan_or = CompilePlan(model, 100);
  ASSERT_TRUE(plan_or.ok());
  const IntegerAffineLayer& conv_op = plan_or.value().linear_stages[0].ops[0];

  // Encrypt a small input.
  SecureRng rng = SecureRng::FromSeed(97);
  std::vector<Ciphertext> in;
  Rng vals(98);
  for (int64_t i = 0; i < conv_op.input_shape().NumElements(); ++i) {
    auto c = Paillier::Encrypt(keys_->public_key,
                               BigInt(static_cast<int64_t>(
                                   vals.NextBounded(200)) -
                                      100),
                               rng);
    ASSERT_TRUE(c.ok());
    in.push_back(std::move(c).value());
  }

  auto serial = conv_op.ApplyEncryptedRows(keys_->public_key, in, 0,
                                           conv_op.rows().size());
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(3);
  for (bool input_part : {false, true}) {
    auto partition = PartitionOp(conv_op, 3);
    ASSERT_TRUE(partition.ok());
    auto parallel =
        ApplyEncryptedPartitioned(keys_->public_key, conv_op, in,
                                  partition.value(), input_part, &pool);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(parallel.value().size(), serial.value().size());
    for (size_t j = 0; j < serial.value().size(); ++j) {
      // Decrypted plaintexts must match (ciphertexts are deterministic
      // here because linear ops add no fresh randomness).
      auto a = Paillier::Decrypt(keys_->public_key, keys_->private_key,
                                 serial.value()[j]);
      auto b = Paillier::Decrypt(keys_->public_key, keys_->private_key,
                                 parallel.value()[j]);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a.value().Compare(b.value()), 0)
          << "row " << j << " input_part=" << input_part;
    }
  }
}

TEST_F(ProtocolTest, StageCacheMatchesNoCacheBitExact) {
  // Fixed-base tables change how each E(m_i)^{w_i} is computed, never the
  // canonical residue it produces — outputs must agree bit for bit with
  // the table-free path, serial and partitioned alike.
  Model model = SmallDenseModel(111);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  const IntegerAffineLayer& dense_op =
      plan_or.value().linear_stages[0].ops[0];

  SecureRng rng = SecureRng::FromSeed(113);
  std::vector<Ciphertext> in;
  for (int64_t i = 0; i < dense_op.input_shape().NumElements(); ++i) {
    auto c = Paillier::Encrypt(keys_->public_key, BigInt(i * 7 - 9), rng);
    ASSERT_TRUE(c.ok());
    in.push_back(std::move(c).value());
  }

  auto no_cache = dense_op.ApplyEncryptedRows(keys_->public_key, in, 0,
                                              dense_op.rows().size());
  ASSERT_TRUE(no_cache.ok());

  // min_fan_out=1 forces a table for every slot regardless of break-even.
  auto cache = dense_op.BuildEncryptedStageCache(keys_->public_key, in,
                                                 nullptr, /*min_fan_out=*/1);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_GT(cache.value().tables_built, 0);

  auto with_cache = dense_op.ApplyEncryptedRows(
      keys_->public_key, in, 0, dense_op.rows().size(), &cache.value());
  ASSERT_TRUE(with_cache.ok()) << with_cache.status().ToString();
  ASSERT_EQ(with_cache.value().size(), no_cache.value().size());
  for (size_t j = 0; j < no_cache.value().size(); ++j) {
    EXPECT_EQ(
        with_cache.value()[j].value.Compare(no_cache.value()[j].value), 0)
        << "row " << j;
  }

  ThreadPool pool(2);
  for (bool input_part : {false, true}) {
    auto partition = PartitionOp(dense_op, 2);
    ASSERT_TRUE(partition.ok());
    auto parallel = ApplyEncryptedPartitioned(
        keys_->public_key, dense_op, in, partition.value(), input_part,
        &pool, &cache.value());
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    for (size_t j = 0; j < no_cache.value().size(); ++j) {
      EXPECT_EQ(
          parallel.value()[j].value.Compare(no_cache.value()[j].value), 0)
          << "row " << j << " input_part=" << input_part;
    }
  }
}

TEST_F(ProtocolTest, StageCacheRespectsBreakEvenThreshold) {
  Model model = SmallDenseModel(117);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  const IntegerAffineLayer& dense_op =
      plan_or.value().linear_stages[0].ops[0];

  SecureRng rng = SecureRng::FromSeed(119);
  std::vector<Ciphertext> in;
  for (int64_t i = 0; i < dense_op.input_shape().NumElements(); ++i) {
    auto c = Paillier::Encrypt(keys_->public_key, BigInt(i + 1), rng);
    ASSERT_TRUE(c.ok());
    in.push_back(std::move(c).value());
  }
  // Fan-out of this op is 5 (out_features): an unreachable threshold must
  // build nothing, and the evaluation must still work off tables.
  auto none = dense_op.BuildEncryptedStageCache(keys_->public_key, in,
                                                nullptr, /*min_fan_out=*/100);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value().tables_built, 0);
  auto out = dense_op.ApplyEncryptedRows(keys_->public_key, in, 0,
                                         dense_op.rows().size(),
                                         &none.value());
  EXPECT_TRUE(out.ok());
}

TEST_F(ProtocolTest, ApplyEncryptedRowsSubValidatesCoverage) {
  Model model = SmallDenseModel(121);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  const IntegerAffineLayer& dense_op =
      plan_or.value().linear_stages[0].ops[0];

  SecureRng rng = SecureRng::FromSeed(123);
  auto c = Paillier::Encrypt(keys_->public_key, BigInt(5), rng);
  ASSERT_TRUE(c.ok());
  // Dense rows tap every input slot; a sub-tensor with only slot 0 must be
  // rejected rather than silently evaluated against the wrong slots.
  std::vector<Ciphertext> sub = {c.value()};
  std::vector<uint32_t> indices = {0};
  auto result = dense_op.ApplyEncryptedRowsSub(keys_->public_key, sub,
                                               indices, 0, 1);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // Mismatched sub/index sizes are rejected too.
  auto mismatch = dense_op.ApplyEncryptedRowsSub(
      keys_->public_key, sub, std::vector<uint32_t>{0, 1}, 0, 1);
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
}

TEST(PartitionTest, ConvReceptiveFieldsShrinkCommunication) {
  Rng rng(101);
  Conv2DGeometry g;
  g.in_channels = 1;
  g.in_height = 8;
  g.in_width = 8;
  g.out_channels = 1;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 1;
  g.padding = 0;
  auto conv = Conv2DLayer::Random(g, rng);
  auto op = IntegerAffineLayer::FromLayer(*conv, Shape{1, 8, 8}, 100, 1);
  ASSERT_TRUE(op.ok());
  auto plan = PartitionOp(op.value(), 4);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().threads.size(), 4u);
  // Input partitioning ships strictly less than per-thread whole-tensor
  // replication for a local-receptive-field convolution, which in turn
  // ships far less than the per-element baseline (paper §IV-D).
  EXPECT_LT(plan.value().elements_with_input_partitioning,
            plan.value().elements_output_partitioning);
  EXPECT_LT(plan.value().elements_output_partitioning,
            plan.value().elements_no_partitioning);
}

TEST(PartitionTest, DenseRowsCoverWholeInput) {
  Rng rng(103);
  auto dense = DenseLayer::Random(10, 4, rng);
  auto op = IntegerAffineLayer::FromLayer(*dense, Shape{10}, 100, 1);
  ASSERT_TRUE(op.ok());
  auto plan = PartitionOp(op.value(), 2);
  ASSERT_TRUE(plan.ok());
  // Dense layers have global receptive fields: input partitioning cannot
  // improve on output partitioning (§IV-D) — but output partitioning still
  // beats the per-element baseline.
  EXPECT_EQ(plan.value().elements_with_input_partitioning,
            plan.value().elements_output_partitioning);
  EXPECT_LT(plan.value().elements_output_partitioning,
            plan.value().elements_no_partitioning);
}

TEST(PartitionTest, MoreThreadsThanRowsClamps) {
  Rng rng(105);
  auto dense = DenseLayer::Random(3, 2, rng);
  auto op = IntegerAffineLayer::FromLayer(*dense, Shape{3}, 100, 1);
  ASSERT_TRUE(op.ok());
  auto plan = PartitionOp(op.value(), 16);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan.value().threads.size(), 2u);
  EXPECT_FALSE(PartitionOp(op.value(), 0).ok());
}

}  // namespace
}  // namespace ppstream
