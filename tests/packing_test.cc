// Tests for the Paillier plaintext-packing path (DESIGN.md §13): the
// balanced-digit codec and its overflow witnesses, layout selection
// across key sizes, serialization fuzz, the weight-value-dedup packed
// kernel (bit-exact against the scalar path, including the k=1
// degenerate case), the packing planner passes, the lane-batched
// protocol with per-stage scalar fallback, and the compression pass
// that feeds the kernels.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/affine.h"
#include "core/fixed_point.h"
#include "core/plan.h"
#include "core/protocol.h"
#include "crypto/packing.h"
#include "crypto/paillier.h"
#include "crypto/secure_rng.h"
#include "nn/compress.h"
#include "nn/layers.h"
#include "nn/model_zoo.h"
#include "nn/trainer.h"
#include "util/buffer.h"
#include "util/rng.h"

namespace ppstream {
namespace {

constexpr int kTestKeyBits = 256;  // small keys keep tests fast

DoubleTensor RandomTensor(const Shape& shape, uint64_t seed, double lo = -2,
                          double hi = 2) {
  Rng rng(seed);
  DoubleTensor t{shape};
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    t[i] = rng.NextUniform(lo, hi);
  }
  return t;
}

// Dense -> ReLU -> Dense -> SoftMax: two rounds.
Model SmallDenseModel(uint64_t seed) {
  Rng rng(seed);
  Model model(Shape{4}, "small");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 5, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(5, 3, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  return model;
}

// Three rounds, so a forced mid-protocol fallback exercises both the
// packed->scalar and scalar->packed representation transitions.
Model ThreeRoundModel(uint64_t seed) {
  Rng rng(seed);
  Model model(Shape{4}, "three");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 6, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 5, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(5, 3, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  return model;
}

std::vector<BigInt> RandomSlots(const PackedLayout& layout, uint64_t seed) {
  Rng rng(seed);
  const BigInt capacity = layout.SlotCapacity();
  // Stay within the guard-protected value range so hom ops stay legal.
  const int64_t value_range =
      int64_t{1} << (layout.slot_bits - 1 - layout.guard_bits - 1);
  std::vector<BigInt> slots;
  for (int32_t i = 0; i < layout.lanes; ++i) {
    int64_t v = static_cast<int64_t>(rng.NextUniform(
        -static_cast<double>(value_range), static_cast<double>(value_range)));
    slots.emplace_back(v);
  }
  (void)capacity;
  return slots;
}

// --------------------------------------------------------------- layout

TEST(PackedLayoutTest, ChoosesLanesFromKeyBudget) {
  auto layout = ChoosePackedLayout(/*key_bits=*/512, BigInt(1'000'000),
                                   /*guard_bits=*/2, /*max_lanes=*/64);
  ASSERT_TRUE(layout.ok());
  EXPECT_GT(layout.value().lanes, 2);
  EXPECT_LE(layout.value().TotalBits(), 510);
  // slot = 20 value bits + 1 sign + 2 guard.
  EXPECT_EQ(layout.value().slot_bits, 23);
  EXPECT_EQ(layout.value().lanes, 510 / 23);
}

TEST(PackedLayoutTest, RespectsMaxLanes) {
  auto layout = ChoosePackedLayout(2048, BigInt(1000), 2, 8);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout.value().lanes, 8);
}

TEST(PackedLayoutTest, FailsWhenBoundLeavesUnderTwoLanes) {
  // A 200-bit bound cannot pack twice into a 256-bit key.
  BigInt wide = BigInt(1) << 200;
  auto layout = ChoosePackedLayout(256, wide, 2, 64);
  EXPECT_FALSE(layout.ok());
}

TEST(PackedLayoutTest, CrossKeySizeRoundTrips) {
  for (int key_bits : {512, 1024, 2048}) {
    auto layout_or =
        ChoosePackedLayout(key_bits, BigInt(3'000'000), 3, 4096);
    ASSERT_TRUE(layout_or.ok()) << key_bits;
    const PackedLayout& layout = layout_or.value();
    EXPECT_LE(layout.TotalBits(), key_bits - 2);
    std::vector<BigInt> slots =
        RandomSlots(layout, 1000 + static_cast<uint64_t>(key_bits));
    auto packed = PackSigned(layout, slots);
    ASSERT_TRUE(packed.ok()) << key_bits;
    auto back = UnpackSigned(layout, packed.value());
    ASSERT_TRUE(back.ok()) << key_bits;
    ASSERT_EQ(back.value().size(), static_cast<size_t>(layout.lanes));
    for (size_t i = 0; i < slots.size(); ++i) {
      EXPECT_EQ(back.value()[i], slots[i]) << key_bits << " slot " << i;
    }
  }
}

TEST(PackedLayoutTest, SerializeRoundTrip) {
  PackedLayout layout{7, 23, 2};
  BufferWriter w;
  layout.Serialize(&w);
  BufferReader r(w.bytes());
  auto back = PackedLayout::Deserialize(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value() == layout);
}

TEST(PackedLayoutTest, DeserializeRejectsGarbage) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes(static_cast<size_t>(rng.NextUniform(0, 16)));
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.NextUniform(0, 256));
    }
    BufferReader r(bytes);
    auto layout = PackedLayout::Deserialize(&r);  // must not crash
    if (layout.ok()) {
      EXPECT_TRUE(layout.value().Validate().ok());
    }
  }
}

// ---------------------------------------------------------------- codec

TEST(PackedCodecTest, PackRejectsOverCapacitySlot) {
  PackedLayout layout{4, 8, 1};
  std::vector<BigInt> slots{BigInt(layout.SlotCapacity() + BigInt(1))};
  EXPECT_FALSE(PackSigned(layout, slots).ok());
}

TEST(PackedCodecTest, MissingSlotsPackAsZero) {
  PackedLayout layout{4, 10, 1};
  auto packed = PackSigned(layout, {BigInt(5), BigInt(-3)});
  ASSERT_TRUE(packed.ok());
  auto back = UnpackSigned(layout, packed.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value()[0], BigInt(5));
  EXPECT_EQ(back.value()[1], BigInt(-3));
  EXPECT_TRUE(back.value()[2].IsZero());
  EXPECT_TRUE(back.value()[3].IsZero());
}

TEST(PackedCodecTest, AdditionIsSlotAligned) {
  PackedLayout layout{5, 12, 2};
  std::vector<BigInt> a = RandomSlots(layout, 41);
  std::vector<BigInt> b = RandomSlots(layout, 43);
  auto pa = PackSigned(layout, a);
  auto pb = PackSigned(layout, b);
  ASSERT_TRUE(pa.ok() && pb.ok());
  ASSERT_TRUE(CheckAddLegal(layout, BigInt(1) << 9, BigInt(1) << 9).ok());
  auto sum = UnpackSigned(layout, pa.value() + pb.value());
  ASSERT_TRUE(sum.ok());
  for (int32_t i = 0; i < layout.lanes; ++i) {
    EXPECT_EQ(sum.value()[static_cast<size_t>(i)],
              a[static_cast<size_t>(i)] + b[static_cast<size_t>(i)]);
  }
}

TEST(PackedCodecTest, ScalarMulScalesEverySlot) {
  PackedLayout layout{5, 12, 3};
  std::vector<BigInt> a = RandomSlots(layout, 47);
  auto pa = PackSigned(layout, a);
  ASSERT_TRUE(pa.ok());
  for (int64_t w : {2, -3, 7}) {
    ASSERT_TRUE(CheckScalarMulLegal(layout, BigInt(1) << 7, BigInt(w)).ok());
    auto scaled = UnpackSigned(layout, pa.value() * BigInt(w));
    ASSERT_TRUE(scaled.ok()) << w;
    for (int32_t i = 0; i < layout.lanes; ++i) {
      EXPECT_EQ(scaled.value()[static_cast<size_t>(i)],
                a[static_cast<size_t>(i)] * BigInt(w));
    }
  }
}

TEST(PackedCodecTest, GuardOverflowProducesWitnessNotCorruption) {
  PackedLayout layout{3, 8, 0};
  // capacity = 127; a sum of 127 + 1 = 128 = 2^(s-1) is the illegal
  // balanced digit (it aliases -128 plus a carry into the next lane).
  auto pa = PackSigned(layout, {BigInt(127), BigInt(5)});
  auto pb = PackSigned(layout, {BigInt(1), BigInt(5)});
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_FALSE(CheckAddLegal(layout, BigInt(127), BigInt(1)).ok());
  auto sum = UnpackSigned(layout, pa.value() + pb.value());
  EXPECT_FALSE(sum.ok());  // overflow is WITNESSED, not silent
}

TEST(PackedCodecTest, ResidueBeyondLastSlotIsRejected) {
  PackedLayout layout{2, 8, 0};
  // A value wider than lanes*slot_bits must be rejected up front.
  BigInt wide = BigInt(1) << 17;
  EXPECT_FALSE(UnpackSigned(layout, wide).ok());
}

TEST(PackedCodecTest, BitFlipAndTruncationFuzzNeverCrashes) {
  PackedLayout layout{6, 14, 2};
  Rng rng(99);
  int decode_errors = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<BigInt> slots = RandomSlots(layout, 5000 + trial);
    auto packed = PackSigned(layout, slots);
    ASSERT_TRUE(packed.ok());
    // Flip one bit somewhere in (or just above) the packed width.
    const int bit = static_cast<int>(
        rng.NextUniform(0, static_cast<double>(layout.TotalBits() + 4)));
    BigInt flipped = packed.value() + (BigInt(1) << bit);
    auto decoded = UnpackSigned(layout, flipped);  // must not crash
    if (!decoded.ok()) ++decode_errors;
    // Truncation (shift out low slots) must also never crash.
    auto truncated = UnpackSigned(layout, packed.value() >> 13);
    (void)truncated;
  }
  // High bit flips beyond the last slot must be witnessed as errors.
  EXPECT_GT(decode_errors, 0);
}

// --------------------------------------------------------------- kernel

class PackedKernelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(23);
    auto pair = Paillier::GenerateKeyPair(kTestKeyBits, rng);
    ASSERT_TRUE(pair.ok());
    keys_ = new PaillierKeyPair(std::move(pair).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }
  static PaillierKeyPair* keys_;
};

PaillierKeyPair* PackedKernelTest::keys_ = nullptr;

// Packs per-lane integer inputs, runs the packed kernel homomorphically,
// and checks every lane against the exact plaintext reference.
void CheckKernelAgainstPlain(const PaillierKeyPair& keys,
                             const IntegerAffineLayer& affine,
                             const PackedLayout& layout, int64_t lanes,
                             const BigInt& input_bound, uint64_t seed) {
  auto kernel = PackedAffineKernel::Build(affine, layout, input_bound);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();

  const int64_t n_in = affine.input_shape().NumElements();
  Rng rng(seed);
  std::vector<Tensor<BigInt>> lane_inputs;
  for (int64_t l = 0; l < lanes; ++l) {
    Tensor<BigInt> in{affine.input_shape()};
    for (int64_t i = 0; i < n_in; ++i) {
      in[i] = BigInt(static_cast<int64_t>(rng.NextUniform(-200, 200)));
    }
    lane_inputs.push_back(std::move(in));
  }

  SecureRng enc_rng = SecureRng::FromSeed(seed ^ 0xABCD);
  std::vector<Ciphertext> words;
  for (int64_t t = 0; t < n_in; ++t) {
    std::vector<BigInt> slots;
    for (int64_t l = 0; l < lanes; ++l) slots.push_back(lane_inputs[l][t]);
    auto packed = PackSigned(layout, slots);
    ASSERT_TRUE(packed.ok());
    auto c = Paillier::Encrypt(keys.public_key, packed.value(), enc_rng);
    ASSERT_TRUE(c.ok());
    words.push_back(std::move(c).value());
  }

  auto out = kernel.value().ApplyEncryptedRowsPacked(
      keys.public_key, words, 0, kernel.value().rows().size());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out.value().size(), affine.rows().size());

  for (int64_t l = 0; l < lanes; ++l) {
    auto expected = affine.ApplyPlain(lane_inputs[l]);
    ASSERT_TRUE(expected.ok());
    for (size_t j = 0; j < out.value().size(); ++j) {
      auto m = Paillier::Decrypt(keys.public_key, keys.private_key,
                                 out.value()[j]);
      ASSERT_TRUE(m.ok());
      auto slots = UnpackSigned(layout, m.value());
      ASSERT_TRUE(slots.ok()) << "row " << j;
      EXPECT_EQ(slots.value()[static_cast<size_t>(l)],
                expected.value()[static_cast<int64_t>(j)])
          << "lane " << l << " row " << j;
    }
  }
}

TEST_F(PackedKernelTest, MatchesPlainReferenceOnAllLanes) {
  Rng rng(7);
  auto dense = DenseLayer::Random(6, 4, rng);
  auto affine =
      IntegerAffineLayer::FromLayer(*dense, Shape{6}, /*scale=*/100, 1);
  ASSERT_TRUE(affine.ok());
  const BigInt input_bound(200);
  const BigInt out_bound = affine.value().OutputMagnitudeBound(input_bound);
  auto layout = ChoosePackedLayout(kTestKeyBits, out_bound, 2, 64);
  ASSERT_TRUE(layout.ok()) << layout.status().ToString();
  ASSERT_GT(layout.value().lanes, 1);
  CheckKernelAgainstPlain(*keys_, affine.value(), layout.value(),
                          layout.value().lanes, input_bound, 333);
}

TEST_F(PackedKernelTest, SingleLaneDegenerateMatchesScalarPathExactly) {
  Rng rng(9);
  auto dense = DenseLayer::Random(5, 3, rng);
  auto affine =
      IntegerAffineLayer::FromLayer(*dense, Shape{5}, /*scale=*/100, 1);
  ASSERT_TRUE(affine.ok());
  const BigInt input_bound(200);
  const BigInt out_bound = affine.value().OutputMagnitudeBound(input_bound);
  // lanes = 1: the packed word IS the scalar value.
  PackedLayout layout{1, out_bound.BitLength() + 2, 1};
  CheckKernelAgainstPlain(*keys_, affine.value(), layout, 1, input_bound,
                          555);

  // And the decrypted packed outputs equal the scalar path bit for bit.
  Tensor<BigInt> in{Shape{5}};
  Rng vals(10);
  std::vector<Ciphertext> cts;
  SecureRng enc_rng = SecureRng::FromSeed(0xFEED);
  for (int64_t i = 0; i < 5; ++i) {
    in[i] = BigInt(static_cast<int64_t>(vals.NextUniform(-200, 200)));
    auto c = Paillier::Encrypt(keys_->public_key, in[i], enc_rng);
    ASSERT_TRUE(c.ok());
    cts.push_back(std::move(c).value());
  }
  auto kernel = PackedAffineKernel::Build(affine.value(), layout, input_bound);
  ASSERT_TRUE(kernel.ok());
  auto packed_out = kernel.value().ApplyEncryptedRowsPacked(
      keys_->public_key, cts, 0, 3);
  auto scalar_out =
      affine.value().ApplyEncryptedRows(keys_->public_key, cts, 0, 3);
  ASSERT_TRUE(packed_out.ok() && scalar_out.ok());
  for (size_t j = 0; j < 3; ++j) {
    auto a = Paillier::Decrypt(keys_->public_key, keys_->private_key,
                               packed_out.value()[j]);
    auto b = Paillier::Decrypt(keys_->public_key, keys_->private_key,
                               scalar_out.value()[j]);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value(), b.value()) << "row " << j;
  }
}

TEST_F(PackedKernelTest, BuildRejectsLayoutTooSmallForBound) {
  Rng rng(11);
  auto dense = DenseLayer::Random(6, 2, rng);
  auto affine =
      IntegerAffineLayer::FromLayer(*dense, Shape{6}, /*scale=*/100, 1);
  ASSERT_TRUE(affine.ok());
  PackedLayout tiny{4, 8, 1};  // capacity 127 << dense output bound
  auto kernel =
      PackedAffineKernel::Build(affine.value(), tiny, BigInt(200));
  EXPECT_FALSE(kernel.ok());
}

TEST_F(PackedKernelTest, QuantizedWeightsCutGroupScalarMuls) {
  Rng rng(13);
  Model model(Shape{16}, "quant");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(16, 12, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  CompressionSpec spec;
  spec.weight_bits = 3;  // at most 7 distinct nonzero levels
  auto compressed = CompressModel(model, spec);
  ASSERT_TRUE(compressed.ok());
  const auto& dense =
      dynamic_cast<const DenseLayer&>(compressed.value().layer(0));
  auto affine =
      IntegerAffineLayer::FromLayer(dense, Shape{16}, /*scale=*/100, 1);
  ASSERT_TRUE(affine.ok());
  const BigInt out_bound = affine.value().OutputMagnitudeBound(BigInt(200));
  auto layout = ChoosePackedLayout(kTestKeyBits, out_bound, 2, 64);
  ASSERT_TRUE(layout.ok());
  auto kernel = PackedAffineKernel::Build(affine.value(), layout.value(),
                                          BigInt(200));
  ASSERT_TRUE(kernel.ok());
  // 12 rows x <= 7 distinct values beats 12 x 16 per-term muls.
  EXPECT_LE(kernel.value().GroupScalarMuls(), 12 * 7);
  EXPECT_LT(kernel.value().GroupScalarMuls(),
            affine.value().EncryptedScalarMuls());
  // Still exact.
  CheckKernelAgainstPlain(*keys_, affine.value(), layout.value(),
                          layout.value().lanes, BigInt(200), 777);
}

// --------------------------------------------------------------- passes

TEST(PackingPassTest, AnnotatesRoundsAndLowersKernels) {
  Model model = SmallDenseModel(29);
  CompileOptions options;
  options.packing = planner::PackingSpec{kTestKeyBits, 2, 64};
  auto plan = CompilePlan(model, 1000, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().compile_stats.rounds_packed, 2);
  EXPECT_EQ(plan.value().compile_stats.rounds_packing_fallback, 0);
  EXPECT_GT(plan.value().compile_stats.packed_group_muls, 0);
  EXPECT_GT(plan.value().PackedBatchLanes(), 1);
  for (const LinearStage& stage : plan.value().linear_stages) {
    ASSERT_TRUE(stage.packed_layout.has_value());
    EXPECT_EQ(stage.packed_kernels.size(), stage.ops.size());
  }
}

TEST(PackingPassTest, FallsBackWhenKeyLeavesNoLanes) {
  Model model = SmallDenseModel(29);
  CompileOptions options;
  // 64-bit "key": bounds at scale 10^6 leave no room for two lanes.
  options.packing = planner::PackingSpec{64, 2, 64};
  auto plan = CompilePlan(model, 1'000'000, options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().compile_stats.rounds_packed, 0);
  EXPECT_EQ(plan.value().compile_stats.rounds_packing_fallback, 2);
  EXPECT_EQ(plan.value().PackedBatchLanes(), 0);
  for (const LinearStage& stage : plan.value().linear_stages) {
    EXPECT_FALSE(stage.packed_layout.has_value());
    EXPECT_TRUE(stage.packed_kernels.empty());
  }
}

TEST(PackingPassTest, PlansWithoutPackingAreUntouched) {
  Model model = SmallDenseModel(29);
  auto plan = CompilePlan(model, 1000);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().compile_stats.rounds_packed, 0);
  for (const LinearStage& stage : plan.value().linear_stages) {
    EXPECT_FALSE(stage.packed_layout.has_value());
  }
}

// ------------------------------------------------------------- protocol

class PackedProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(31);
    auto pair = Paillier::GenerateKeyPair(kTestKeyBits, rng);
    ASSERT_TRUE(pair.ok());
    keys_ = new PaillierKeyPair(std::move(pair).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }
  static PaillierKeyPair* keys_;
};

PaillierKeyPair* PackedProtocolTest::keys_ = nullptr;

void ExpectBatchMatchesReference(const std::shared_ptr<InferencePlan>& plan,
                                 const PaillierKeyPair& keys, int64_t lanes,
                                 uint64_t seed) {
  ModelProvider mp(plan, keys.public_key, /*obf_seed=*/seed * 2 + 1);
  DataProvider dp(plan, keys, /*enc_seed=*/seed * 2 + 7);
  std::vector<DoubleTensor> inputs;
  for (int64_t l = 0; l < lanes; ++l) {
    inputs.push_back(
        RandomTensor(plan->input_shape, seed + static_cast<uint64_t>(l)));
  }
  auto batch_out = RunPackedBatchInference(mp, dp, /*request_id=*/seed,
                                           inputs);
  ASSERT_TRUE(batch_out.ok()) << batch_out.status().ToString();
  ASSERT_EQ(batch_out.value().size(), inputs.size());
  EXPECT_EQ(mp.PendingRequestsForTesting(), 0u);
  for (int64_t l = 0; l < lanes; ++l) {
    // The scalar protocol is bit-exact against the scaled plain
    // reference; the packed batch must match the SAME reference, so each
    // lane is bit-exact with an independent scalar inference.
    auto plain = RunScaledPlainInference(*plan, inputs[static_cast<size_t>(l)]);
    ASSERT_TRUE(plain.ok());
    const DoubleTensor& got = batch_out.value()[static_cast<size_t>(l)];
    ASSERT_EQ(got.NumElements(), plain.value().NumElements());
    for (int64_t i = 0; i < got.NumElements(); ++i) {
      EXPECT_DOUBLE_EQ(got[i], plain.value()[i])
          << "lane " << l << " element " << i;
    }
  }
}

TEST_F(PackedProtocolTest, FullyPackedBatchIsBitExactPerLane) {
  Model model = SmallDenseModel(29);
  CompileOptions options;
  options.packing = planner::PackingSpec{kTestKeyBits, 2, 64};
  auto plan_or = CompilePlan(model, 1000, options);
  ASSERT_TRUE(plan_or.ok());
  ASSERT_TRUE(plan_or.value().CheckFitsKey(keys_->public_key.n()).ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  const int64_t lanes = std::min<int64_t>(plan->PackedBatchLanes(), 4);
  ASSERT_GT(lanes, 1);
  ExpectBatchMatchesReference(plan, *keys_, lanes, 101);
}

TEST_F(PackedProtocolTest, SingleLaneBatchWorks) {
  Model model = SmallDenseModel(29);
  CompileOptions options;
  options.packing = planner::PackingSpec{kTestKeyBits, 2, 64};
  auto plan_or = CompilePlan(model, 1000, options);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  ExpectBatchMatchesReference(plan, *keys_, 1, 211);
}

TEST_F(PackedProtocolTest, MidProtocolScalarFallbackStaysExact) {
  Model model = ThreeRoundModel(37);
  CompileOptions options;
  options.packing = planner::PackingSpec{kTestKeyBits, 2, 64};
  auto plan_or = CompilePlan(model, 1000, options);
  ASSERT_TRUE(plan_or.ok());
  InferencePlan plan_val = std::move(plan_or).value();
  ASSERT_EQ(plan_val.NumRounds(), 3u);
  // Force the MIDDLE round scalar: exercises the packed->interleaved and
  // interleaved->packed transitions plus blockwise obfuscation.
  plan_val.linear_stages[1].packed_layout.reset();
  plan_val.linear_stages[1].packed_kernels.clear();
  auto plan = std::make_shared<InferencePlan>(std::move(plan_val));
  const int64_t lanes = std::min<int64_t>(plan->PackedBatchLanes(), 3);
  ASSERT_GT(lanes, 1);
  ExpectBatchMatchesReference(plan, *keys_, lanes, 307);
}

TEST_F(PackedProtocolTest, AllScalarFallbackStaysExact) {
  // No packing at all: the batch path degenerates to interleaved lanes.
  Model model = SmallDenseModel(29);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  ExpectBatchMatchesReference(plan, *keys_, 3, 401);
}

TEST_F(PackedProtocolTest, RejectsBatchBeyondPlanLanes) {
  Model model = SmallDenseModel(29);
  CompileOptions options;
  options.packing = planner::PackingSpec{kTestKeyBits, 2, 2};
  auto plan_or = CompilePlan(model, 1000, options);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  ASSERT_EQ(plan->PackedBatchLanes(), 2);
  ModelProvider mp(plan, keys_->public_key, 3);
  DataProvider dp(plan, *keys_, 5);
  std::vector<DoubleTensor> inputs(3, RandomTensor(plan->input_shape, 1));
  EXPECT_FALSE(RunPackedBatchInference(mp, dp, 1, inputs).ok());
}

TEST_F(PackedProtocolTest, ViewSerializationCarriesLayouts) {
  Model model = SmallDenseModel(29);
  CompileOptions options;
  options.packing = planner::PackingSpec{kTestKeyBits, 2, 64};
  auto plan_or = CompilePlan(model, 1000, options);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());

  BufferWriter w;
  plan->SerializeDataProviderView(&w);
  BufferReader r(w.bytes());
  auto view_or = InferencePlan::DeserializeDataProviderView(&r);
  ASSERT_TRUE(view_or.ok()) << view_or.status().ToString();
  auto view = std::make_shared<InferencePlan>(std::move(view_or).value());
  ASSERT_EQ(view->linear_stages.size(), plan->linear_stages.size());
  for (size_t i = 0; i < view->linear_stages.size(); ++i) {
    ASSERT_TRUE(view->linear_stages[i].packed_layout.has_value());
    EXPECT_TRUE(*view->linear_stages[i].packed_layout ==
                *plan->linear_stages[i].packed_layout);
    EXPECT_TRUE(view->linear_stages[i].packed_kernels.empty());
  }
  EXPECT_EQ(view->PackedBatchLanes(), plan->PackedBatchLanes());

  // A data provider built from the VIEW must interoperate with a model
  // provider on the full plan, packing included.
  ModelProvider mp(plan, keys_->public_key, 11);
  DataProvider dp(view, *keys_, 13);
  std::vector<DoubleTensor> inputs;
  for (int l = 0; l < 2; ++l) {
    inputs.push_back(RandomTensor(plan->input_shape, 600 + l));
  }
  auto out = RunPackedBatchInference(mp, dp, 17, inputs);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  auto plain = RunScaledPlainInference(*plan, inputs[0]);
  ASSERT_TRUE(plain.ok());
  for (int64_t i = 0; i < plain.value().NumElements(); ++i) {
    EXPECT_DOUBLE_EQ(out.value()[0][i], plain.value()[i]);
  }
}

TEST_F(PackedProtocolTest, ViewBitFlipFuzzNeverCrashes) {
  Model model = SmallDenseModel(29);
  CompileOptions options;
  options.packing = planner::PackingSpec{kTestKeyBits, 2, 64};
  auto plan_or = CompilePlan(model, 1000, options);
  ASSERT_TRUE(plan_or.ok());
  BufferWriter w;
  plan_or.value().SerializeDataProviderView(&w);
  std::vector<uint8_t> bytes = w.TakeBytes();
  Rng rng(88);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> corrupted = bytes;
    const size_t at = static_cast<size_t>(
        rng.NextUniform(0, static_cast<double>(corrupted.size())));
    corrupted[at] ^= static_cast<uint8_t>(
        1u << static_cast<unsigned>(rng.NextUniform(0, 8)));
    BufferReader r(corrupted);
    auto view = InferencePlan::DeserializeDataProviderView(&r);
    (void)view;  // error or a structurally valid plan; never a crash
  }
  // Truncations too.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<int64_t>(len));
    BufferReader r(prefix);
    auto view = InferencePlan::DeserializeDataProviderView(&r);
    EXPECT_FALSE(view.ok());
  }
}

TEST_F(PackedProtocolTest, PrefilledPoolServesBurstWithoutMisses) {
  Model model = SmallDenseModel(29);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  DataProvider::Options dp_options;
  dp_options.expected_concurrency = 4;
  dp_options.prefill = true;
  DataProvider dp(plan, *keys_, 19, dp_options);
  for (int i = 0; i < 4; ++i) {
    auto wire = dp.EncryptInput(RandomTensor(plan->input_shape, 700 + i));
    ASSERT_TRUE(wire.ok());
  }
  const RandomizerPool::Stats stats = dp.PoolStatsForTesting();
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_GT(stats.hits, 0u);
}

// ---------------------------------------------------------- compression

TEST(CompressTest, PruneZeroesRequestedFraction) {
  Rng rng(5);
  Model model(Shape{10}, "p");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(10, 10, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  CompressionSpec spec;
  spec.prune_fraction = 0.5;
  CompressionReport report;
  auto out = CompressModel(model, spec, &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(report.weights_total, 100);
  EXPECT_GE(report.weights_pruned, 45);
  EXPECT_LE(report.weights_pruned, 55);
  const auto& dense = dynamic_cast<const DenseLayer&>(out.value().layer(0));
  int64_t zeros = 0;
  for (int64_t i = 0; i < dense.weights().NumElements(); ++i) {
    if (dense.weights()[i] == 0.0) ++zeros;
  }
  EXPECT_EQ(zeros, report.weights_pruned);
}

TEST(CompressTest, QuantizationBoundsDistinctValues) {
  Rng rng(6);
  Model model(Shape{20}, "q");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(20, 20, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  CompressionSpec spec;
  spec.weight_bits = 4;  // <= 15 distinct nonzero levels
  CompressionReport report;
  auto out = CompressModel(model, spec, &report);
  ASSERT_TRUE(out.ok());
  EXPECT_LE(report.distinct_after, 15);
  EXPECT_GT(report.distinct_before, report.distinct_after);
}

TEST(CompressTest, RejectsBadSpecs) {
  Model model(Shape{4}, "bad");
  Rng rng(7);
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 2, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  CompressionSpec spec;
  spec.prune_fraction = 1.0;
  EXPECT_FALSE(CompressModel(model, spec).ok());
  spec.prune_fraction = 0;
  spec.weight_bits = 1;
  EXPECT_FALSE(CompressModel(model, spec).ok());
}

TEST(CompressTest, CompressedZooModelKeepsUsableAccuracy) {
  // The Table IV/V protocol: compress, re-check accuracy on the zoo
  // dataset, report the (bounded) delta. Tabular 3FC trains in well under
  // a second at this scale.
  DatasetSplit data = MakeZooDataset(ZooModelId::kBreast, 0.25, 42);
  auto model = MakeTrainedZooModel(ZooModelId::kBreast, data.train, 42);
  ASSERT_TRUE(model.ok());
  auto base_acc = EvaluateAccuracy(model.value(), data.test);
  ASSERT_TRUE(base_acc.ok());

  CompressionSpec spec;
  spec.prune_fraction = 0.3;
  spec.weight_bits = 5;
  CompressionReport report;
  auto compressed = CompressModel(model.value(), spec, &report);
  ASSERT_TRUE(compressed.ok());
  EXPECT_GT(report.weights_pruned, 0);
  auto comp_acc = EvaluateAccuracy(compressed.value(), data.test);
  ASSERT_TRUE(comp_acc.ok());
  // Moderate pruning + 5-bit weights must not collapse the model.
  EXPECT_GE(comp_acc.value(), base_acc.value() - 0.15);
}

}  // namespace
}  // namespace ppstream
