// Tests for the stage-graph IR, the pass manager, and the optimizing
// passes: structural verification, fused-vs-unfused bit-exactness on the
// model zoo, randomized models through the verifier, placement, and the
// post-pipeline key-size check.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/affine.h"
#include "core/plan.h"
#include "core/protocol.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "nn/model_zoo.h"
#include "nn/trainer.h"
#include "planner/ir.h"
#include "planner/pass.h"
#include "planner/passes.h"
#include "util/rng.h"

namespace ppstream {
namespace {

using planner::FusionPolicy;
using planner::PassManager;
using planner::StageGraph;

DoubleTensor RandomTensor(const Shape& shape, uint64_t seed, double lo = -1,
                          double hi = 1) {
  Rng rng(seed);
  DoubleTensor t(shape);
  for (auto& v : t.data()) v = rng.NextUniform(lo, hi);
  return t;
}

// Dense -> ReLU -> Dense -> SoftMax with seeded random weights.
Model SmallModel(uint64_t seed, int64_t in = 4, int64_t hidden = 5,
                 int64_t out = 3) {
  Rng rng(seed);
  Model model(Shape{in}, "small");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(in, hidden, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(hidden, out, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  return model;
}

// ------------------------------------------------------------ StageGraph

TEST(StageGraphTest, FromModelBuildsVerifiableChain) {
  Model model = SmallModel(3);
  auto graph = StageGraph::FromModel(model, 100, 1.0);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_TRUE(graph->Verify().ok()) << graph->Verify().ToString();
  EXPECT_EQ(graph->NumLiveNodes(), 4);
  EXPECT_EQ(graph->NumLiveTensors(), 5);
  auto order = graph->ChainOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->size(), 4u);
  // The dump names every node and returns the output tensor.
  const std::string dump = graph->ToString();
  EXPECT_NE(dump.find("graph small"), std::string::npos);
  EXPECT_NE(dump.find("Dense"), std::string::npos);
  EXPECT_NE(dump.find("return"), std::string::npos);
}

TEST(StageGraphTest, VerifierCatchesDeadOutputTensor) {
  Model model = SmallModel(5);
  auto graph = StageGraph::FromModel(model, 100, 1.0);
  ASSERT_TRUE(graph.ok());
  graph->tensor(graph->output()).live = false;
  EXPECT_FALSE(graph->Verify().ok());
}

TEST(StageGraphTest, VerifierCatchesDefUseMismatch) {
  Model model = SmallModel(7);
  auto graph = StageGraph::FromModel(model, 100, 1.0);
  ASSERT_TRUE(graph.ok());
  // Claim node 0 writes the graph input: def/use symmetry breaks.
  graph->node(0).output = graph->input();
  EXPECT_FALSE(graph->Verify().ok());
}

TEST(StageGraphTest, VerifierCatchesBrokenChain) {
  Model model = SmallModel(9);
  auto graph = StageGraph::FromModel(model, 100, 1.0);
  ASSERT_TRUE(graph.ok());
  // Killing a middle node (without rewiring) disconnects the chain.
  graph->node(1).live = false;
  EXPECT_FALSE(graph->Verify().ok());
}

TEST(StageGraphTest, VerifierCatchesShapeMismatch) {
  Model model = SmallModel(11);
  auto graph = StageGraph::FromModel(model, 100, 1.0);
  ASSERT_TRUE(graph.ok());
  graph->tensor(graph->output()).shape = Shape{17};
  EXPECT_FALSE(graph->Verify().ok());
}

// ------------------------------------------------------------ PassManager

// A deliberately broken pass: kills the output tensor and reports success.
class VandalPass : public planner::Pass {
 public:
  std::string name() const override { return "vandal"; }
  Status Run(StageGraph* graph) override {
    graph->tensor(graph->output()).live = false;
    return Status();
  }
};

TEST(PassManagerTest, CatchesPassThatLeavesIrInvalid) {
  Model model = SmallModel(13);
  auto graph = StageGraph::FromModel(model, 100, 1.0);
  ASSERT_TRUE(graph.ok());
  PassManager pm;
  pm.Add(std::make_unique<VandalPass>());
  Status st = pm.Run(&*graph, nullptr);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("vandal"), std::string::npos);
  EXPECT_NE(st.message().find("left the IR invalid"), std::string::npos);
}

TEST(PassManagerTest, ObserverSeesInitialAndEveryPass) {
  Model model = SmallModel(15);
  auto graph = StageGraph::FromModel(model, 100, 1.0);
  ASSERT_TRUE(graph.ok());

  class Recorder : public planner::PassObserver {
   public:
    void AfterPass(const std::string& name, const StageGraph&) override {
      names.push_back(name);
    }
    std::vector<std::string> names;
  } recorder;

  PassManager pm;
  pm.Add(planner::MakeRewriteMaxPoolPass())
      .Add(planner::MakeClassifyPass());
  ASSERT_TRUE(pm.Run(&*graph, &recorder).ok());
  ASSERT_EQ(recorder.names.size(), 3u);
  EXPECT_EQ(recorder.names[0], "initial");
  EXPECT_EQ(recorder.names[1], "rewrite-maxpool");
  EXPECT_EQ(recorder.names[2], "classify");
}

// ------------------------------------------------------------ Compose

TEST(AffineComposeTest, RejectsScalePowerMismatch) {
  ScalarScaleLayer a(0.5), b(2.0);
  auto fa = IntegerAffineLayer::FromLayer(a, Shape{3}, 100, 1);
  auto fb = IntegerAffineLayer::FromLayer(b, Shape{3}, 100, 1);
  ASSERT_TRUE(fa.ok() && fb.ok());
  // fa outputs power 2 but fb expects power-1 input: not composable.
  EXPECT_FALSE(IntegerAffineLayer::Compose(*fa, *fb).ok());
  // With the right continuity it composes, and muls don't grow.
  auto fb2 = IntegerAffineLayer::FromLayer(b, Shape{3}, 100, 2);
  ASSERT_TRUE(fb2.ok());
  auto composed = IntegerAffineLayer::Compose(*fa, *fb2);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  EXPECT_EQ(composed->output_scale_power(), 3);
  EXPECT_LE(composed->EncryptedScalarMuls(),
            fa->EncryptedScalarMuls() + fb2->EncryptedScalarMuls());
}

TEST(AffineComposeTest, RejectsInt64WeightOverflow) {
  // Two scalar scales of 2^40 at scale 2^40 compose to a 2^80 weight,
  // which cannot be held in an int64 term: Compose must refuse (and the
  // fusion pass then simply keeps the ops separate).
  const double big = 1099511627776.0;  // 2^40
  ScalarScaleLayer a(big), b(big);
  auto fa = IntegerAffineLayer::FromLayer(a, Shape{2}, 1099511627776, 1);
  auto fb = IntegerAffineLayer::FromLayer(b, Shape{2}, 1099511627776, 2);
  ASSERT_TRUE(fa.ok() && fb.ok());
  auto composed = IntegerAffineLayer::Compose(*fa, *fb);
  ASSERT_FALSE(composed.ok());
  EXPECT_EQ(composed.status().code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------ fused-vs-unfused zoo

// Compiles the model both ways and requires bit-identical scaled-plain
// outputs on `trials` random inputs. Returns the two plans for further
// inspection.
struct PlanPair {
  InferencePlan fused;
  InferencePlan unfused;
};

PlanPair CompileBothWays(const Model& model, int64_t scale,
                         const Shape& input_shape, int trials,
                         uint64_t seed) {
  CompileOptions fused_opts;
  fused_opts.fusion = FusionPolicy::kScalarMulCount;
  CompileOptions unfused_opts;
  unfused_opts.fusion = FusionPolicy::kNever;
  auto fused = CompilePlan(model, scale, fused_opts);
  auto unfused = CompilePlan(model, scale, unfused_opts);
  EXPECT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_TRUE(unfused.ok()) << unfused.status().ToString();
  for (int t = 0; t < trials; ++t) {
    DoubleTensor x = RandomTensor(input_shape, seed + t);
    auto yf = RunScaledPlainInference(*fused, x);
    auto yu = RunScaledPlainInference(*unfused, x);
    EXPECT_TRUE(yf.ok() && yu.ok());
    if (!yf.ok() || !yu.ok()) break;
    EXPECT_EQ(yf->NumElements(), yu->NumElements());
    for (int64_t i = 0; i < yf->NumElements(); ++i) {
      // Bit-identical, not merely close: fusion composes the same
      // integers exactly.
      EXPECT_EQ((*yf)[i], (*yu)[i]) << "trial " << t << " element " << i;
    }
  }
  return PlanPair{std::move(fused).value(), std::move(unfused).value()};
}

TEST(FusionTest, Mnist1FusedPlanIsBitIdenticalAndSmaller) {
  auto model = MakeZooModel(ZooModelId::kMnist1, /*seed=*/21);
  ASSERT_TRUE(model.ok());
  PlanPair plans =
      CompileBothWays(*model, 100, Shape{1, 28, 28}, /*trials=*/2, 900);
  // Flatten+Dense folds: fewer linear ops, no more scalar muls.
  const auto& stats = plans.fused.compile_stats;
  EXPECT_GT(stats.ops_fused, 0);
  EXPECT_LT(stats.linear_ops_after_fusion, stats.linear_ops_before_fusion);
  EXPECT_LE(stats.scalar_muls_after_fusion, stats.scalar_muls_before_fusion);
  EXPECT_GT(stats.dead_tensors_removed, 0);
  // Rounds (the Figure 4 alternation) are preserved either way.
  EXPECT_EQ(plans.fused.NumRounds(), plans.unfused.NumRounds());
  // The prepared float model is reconstructed identically from fused IR.
  EXPECT_EQ(plans.fused.prepared_model.NumLayers(),
            plans.unfused.prepared_model.NumLayers());
}

TEST(FusionTest, Mnist2ConvModelIsBitIdentical) {
  auto model = MakeZooModel(ZooModelId::kMnist2, /*seed=*/22);
  ASSERT_TRUE(model.ok());
  PlanPair plans =
      CompileBothWays(*model, 100, Shape{1, 28, 28}, /*trials=*/1, 910);
  EXPECT_GT(plans.fused.compile_stats.ops_fused, 0);
}

// Pins the MNIST-2 fusion cost model (the bench_pipeline fusion probe
// uses the identical dataset/training seeds, so these literals must match
// bench/BENCH_pipeline.json). The Flatten+Dense fold removes one linear
// op and one dead tensor but genuinely saves ZERO scalar muls: Flatten is
// a pure permutation (weight-1 rows cost no encrypted mul), so composing
// it into the Dense just relabels the same 33,137 weighted terms. The
// cost model must record that honestly — expected_savings: 0 — rather
// than credit the fusion with crypto wins it does not deliver.
TEST(FusionTest, Mnist2FusionCostModelPinsScalarMuls) {
  DatasetSplit data = MakeZooDataset(ZooModelId::kMnist2, 0.02, 1000);
  auto model = MakeTrainedZooModel(ZooModelId::kMnist2, data.train, 1001);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  // bench_common::Train keeps this first attempt only when it clears the
  // plateau threshold; assert so a drift from the bench model is loud.
  auto acc = EvaluateAccuracy(*model, data.train);
  ASSERT_TRUE(acc.ok());
  ASSERT_GE(*acc, 0.6);

  auto plan = CompilePlan(*model, /*scale=*/10000);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto& stats = plan->compile_stats;
  EXPECT_EQ(stats.ops_fused, 1);
  // 33,137 = 14,400 (Conv2D) + 18,417 (Flatten*Dense) + 320 (Dense),
  // where a handful of trained weights quantize to exact zero at F=1e4.
  EXPECT_EQ(stats.scalar_muls_before_fusion, 33137);
  EXPECT_EQ(stats.scalar_muls_after_fusion, 33137);
  EXPECT_EQ(stats.scalar_muls_before_fusion - stats.scalar_muls_after_fusion,
            0);
  // The fusion still pays for itself structurally: one fewer linear op
  // and the intermediate flatten tensor eliminated.
  EXPECT_LT(stats.linear_ops_after_fusion, stats.linear_ops_before_fusion);
  EXPECT_GT(stats.dead_tensors_removed, 0);
}

TEST(FusionTest, ZooAccuracyIsIdenticalFusedVsUnfused) {
  // Table IV/V style accuracy on a small synthetic split must not move
  // by a single sample when fusion is on.
  for (ZooModelId id : {ZooModelId::kBreast, ZooModelId::kHeart}) {
    DatasetSplit data = MakeZooDataset(id, /*size_scale=*/0.02, 77);
    auto model = MakeTrainedZooModel(id, data.train, 78);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    CompileOptions fused_opts;
    CompileOptions unfused_opts;
    unfused_opts.fusion = FusionPolicy::kNever;
    auto fused = CompilePlan(*model, 1000, fused_opts);
    auto unfused = CompilePlan(*model, 1000, unfused_opts);
    ASSERT_TRUE(fused.ok() && unfused.ok());
    auto acc_fused = EvaluateScaledPlanAccuracy(*fused, data.test);
    auto acc_unfused = EvaluateScaledPlanAccuracy(*unfused, data.test);
    ASSERT_TRUE(acc_fused.ok() && acc_unfused.ok());
    EXPECT_EQ(*acc_fused, *acc_unfused);
  }
}

// Heart's 3FC uses the mixed ScaledSigmoid: its ScalarScale half fuses
// into the preceding Dense, shrinking encrypted op count with bit-exact
// outputs (the acceptance scenario).
TEST(FusionTest, HeartScaledSigmoidChainFuses) {
  auto model = MakeZooModel(ZooModelId::kHeart, /*seed=*/25);
  ASSERT_TRUE(model.ok());
  PlanPair plans = CompileBothWays(*model, 1000, Shape{13}, /*trials=*/3, 40);
  const auto& stats = plans.fused.compile_stats;
  EXPECT_GT(stats.ops_fused, 0);
  // Dense+ScalarScale composition strictly reduces scalar muls (the
  // scale taps disappear into the dense weights).
  EXPECT_LT(stats.scalar_muls_after_fusion, stats.scalar_muls_before_fusion);
  int64_t fused_ops = 0, unfused_ops = 0;
  for (const auto& s : plans.fused.linear_stages) fused_ops += s.ops.size();
  for (const auto& s : plans.unfused.linear_stages)
    unfused_ops += s.ops.size();
  EXPECT_LT(fused_ops, unfused_ops);
}

// ------------------------------------------------------------ fuzz

// Random valid models (linear runs of random length, random activations)
// must compile under every fusion policy with the per-pass verifier on,
// and fused inference must stay bit-identical to unfused.
TEST(FusionFuzzTest, RandomModelsCompileAndStayExact) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(1000 + seed);
    const int64_t features = 3 + static_cast<int64_t>(rng.NextBounded(5));
    Model model(Shape{features}, "fuzz");
    int64_t width = features;
    const int rounds = 1 + static_cast<int>(rng.NextBounded(3));
    for (int r = 0; r < rounds; ++r) {
      const int linear_len = 1 + static_cast<int>(rng.NextBounded(3));
      for (int l = 0; l < linear_len; ++l) {
        switch (rng.NextBounded(3)) {
          case 0: {
            int64_t next = 2 + static_cast<int64_t>(rng.NextBounded(5));
            PPS_CHECK_OK(model.Add(DenseLayer::Random(width, next, rng)));
            width = next;
            break;
          }
          case 1:
            PPS_CHECK_OK(model.Add(std::make_unique<ScalarScaleLayer>(
                0.25 + rng.NextDouble())));
            break;
          default:
            PPS_CHECK_OK(model.Add(std::make_unique<FlattenLayer>()));
            break;
        }
      }
      const bool last = r == rounds - 1;
      if (last) {
        PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
      } else if (rng.NextBounded(2) == 0) {
        PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
      } else {
        PPS_CHECK_OK(model.Add(std::make_unique<SigmoidLayer>()));
      }
    }

    for (FusionPolicy policy :
         {FusionPolicy::kScalarMulCount, FusionPolicy::kAlways}) {
      CompileOptions opts;
      opts.fusion = policy;
      auto fused = CompilePlan(model, 100, opts);
      ASSERT_TRUE(fused.ok())
          << "seed " << seed << ": " << fused.status().ToString();
      CompileOptions never;
      never.fusion = FusionPolicy::kNever;
      auto unfused = CompilePlan(model, 100, never);
      ASSERT_TRUE(unfused.ok());
      DoubleTensor x = RandomTensor(Shape{features}, 2000 + seed);
      auto yf = RunScaledPlainInference(*fused, x);
      auto yu = RunScaledPlainInference(*unfused, x);
      ASSERT_TRUE(yf.ok() && yu.ok()) << "seed " << seed;
      for (int64_t i = 0; i < yf->NumElements(); ++i) {
        EXPECT_EQ((*yf)[i], (*yu)[i]) << "seed " << seed;
      }
    }
  }
}

// ------------------------------------------------------------ placement

TEST(PlacementTest, CompileWithPlacementAnnotatesEveryStage) {
  auto model = MakeZooModel(ZooModelId::kMnist1, /*seed=*/31);
  ASSERT_TRUE(model.ok());
  CompileOptions opts;
  planner::PlacementSpec spec;
  spec.model_servers = 2;
  spec.data_servers = 1;
  spec.cores_per_server = 4;
  opts.placement = spec;
  auto plan = CompilePlan(*model, 100, opts);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(plan->placement.has_value());
  const auto& pl = *plan->placement;
  const size_t stages = 2 * plan->NumRounds();
  ASSERT_EQ(pl.server_of_stage.size(), stages);
  ASSERT_EQ(pl.threads_of_stage.size(), stages);
  for (size_t i = 0; i < stages; ++i) {
    const bool linear = (i % 2) == 0;
    // Model-provider servers come first: linear stages land on [0,2),
    // non-linear segments on [2,3).
    if (linear) {
      EXPECT_GE(pl.server_of_stage[i], 0);
      EXPECT_LT(pl.server_of_stage[i], 2);
    } else {
      EXPECT_EQ(pl.server_of_stage[i], 2);
    }
    EXPECT_GE(pl.threads_of_stage[i], 1);
  }
}

// ------------------------------------------------------------ key check

TEST(CheckFitsKeyTest, NamesTheOffendingStage) {
  Model model = SmallModel(17);
  auto plan = CompilePlan(model, 1000);
  ASSERT_TRUE(plan.ok());
  Status st = plan->CheckFitsKey(BigInt(1000));  // absurdly small modulus
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("stage '"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("key size"), std::string::npos);
}

}  // namespace
}  // namespace ppstream
