// Unit tests for the crypto substrate: SHA-256, ChaCha20 CSPRNG, Paillier
// PHE, and the obfuscation permutation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "crypto/paillier.h"
#include "crypto/permutation.h"
#include "crypto/randomizer_pool.h"
#include "crypto/secure_rng.h"
#include "crypto/sha256.h"

namespace ppstream {
namespace {

// ---------------------------------------------------------------- SHA-256

TEST(Sha256Test, Fips180Vectors) {
  // NIST FIPS 180-4 reference vectors.
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::ToHex(Sha256::Hash(std::string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.Update(chunk);
  EXPECT_EQ(Sha256::ToHex(hasher.Finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 hasher;
    hasher.Update(msg.substr(0, split));
    hasher.Update(msg.substr(split));
    EXPECT_EQ(hasher.Finalize(), Sha256::Hash(msg));
  }
}

TEST(Sha256Test, ResetStartsFresh) {
  Sha256 hasher;
  hasher.Update(std::string("garbage"));
  hasher.Reset();
  hasher.Update(std::string("abc"));
  EXPECT_EQ(Sha256::ToHex(hasher.Finalize()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// ------------------------------------------------------------- SecureRng

TEST(SecureRngTest, DeterministicForSameKey) {
  SecureRng a = SecureRng::FromSeed(1234);
  SecureRng b = SecureRng::FromSeed(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(SecureRngTest, DifferentKeysDiverge) {
  SecureRng a = SecureRng::FromSeed(1);
  SecureRng b = SecureRng::FromSeed(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_EQ(same, 0);
}

TEST(SecureRngTest, BoundedStaysInRange) {
  SecureRng rng = SecureRng::FromSeed(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 100ULL, 1ULL << 33}) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(SecureRngTest, BigIntBelowStaysInRange) {
  SecureRng rng = SecureRng::FromSeed(11);
  auto bound = BigInt::FromDecimalString("123456789012345678901234567890");
  ASSERT_TRUE(bound.ok());
  for (int i = 0; i < 50; ++i) {
    BigInt v = rng.NextBigIntBelow(bound.value());
    EXPECT_LT(v.Compare(bound.value()), 0);
    EXPECT_FALSE(v.IsNegative());
  }
}

TEST(SecureRngTest, CoprimeBelowIsCoprime) {
  SecureRng rng = SecureRng::FromSeed(13);
  BigInt n = BigInt(35);  // 5 * 7, so ~1/3 of candidates share a factor
  for (int i = 0; i < 30; ++i) {
    BigInt r = rng.NextCoprimeBelow(n);
    EXPECT_TRUE(BigInt::Gcd(r, n).IsOne());
    EXPECT_FALSE(r.IsZero());
  }
}

TEST(SecureRngTest, ByteDistributionIsRoughlyUniform) {
  SecureRng rng = SecureRng::FromSeed(17);
  std::vector<int> counts(256, 0);
  constexpr int kSamples = 256 * 64;
  for (int i = 0; i < kSamples; ++i) counts[rng.NextByte()]++;
  // Expect each bucket near 64; a bucket at 0 or >3x mean indicates bias.
  for (int c : counts) {
    EXPECT_GT(c, 0);
    EXPECT_LT(c, 192);
  }
}

// --------------------------------------------------------------- Paillier

class PaillierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(42);
    auto pair = Paillier::GenerateKeyPair(512, rng);
    ASSERT_TRUE(pair.ok()) << pair.status().ToString();
    keys_ = new PaillierKeyPair(std::move(pair).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }

  static PaillierKeyPair* keys_;
};

PaillierKeyPair* PaillierTest::keys_ = nullptr;

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  SecureRng rng = SecureRng::FromSeed(19);
  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{123456789},
                    int64_t{-987654321}, int64_t{1} << 50}) {
    auto c = Paillier::Encrypt(keys_->public_key, BigInt(m), rng);
    ASSERT_TRUE(c.ok());
    auto back = Paillier::Decrypt(keys_->public_key, keys_->private_key,
                                  c.value());
    ASSERT_TRUE(back.ok());
    auto v = back.value().ToInt64();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(v.value(), m);
  }
}

TEST_F(PaillierTest, EncryptionIsProbabilistic) {
  SecureRng rng = SecureRng::FromSeed(23);
  auto c1 = Paillier::Encrypt(keys_->public_key, BigInt(42), rng);
  auto c2 = Paillier::Encrypt(keys_->public_key, BigInt(42), rng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1.value().value.Compare(c2.value().value), 0)
      << "two encryptions of the same plaintext must differ";
}

TEST_F(PaillierTest, HomomorphicAddition) {
  SecureRng rng = SecureRng::FromSeed(29);
  auto c1 = Paillier::Encrypt(keys_->public_key, BigInt(1234), rng);
  auto c2 = Paillier::Encrypt(keys_->public_key, BigInt(-234), rng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  Ciphertext sum = Paillier::Add(keys_->public_key, c1.value(), c2.value());
  auto m = Paillier::Decrypt(keys_->public_key, keys_->private_key, sum);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().ToDecimalString(), "1000");
}

TEST_F(PaillierTest, HomomorphicScalarMultiplication) {
  SecureRng rng = SecureRng::FromSeed(31);
  auto c = Paillier::Encrypt(keys_->public_key, BigInt(111), rng);
  ASSERT_TRUE(c.ok());
  for (int64_t w : {int64_t{0}, int64_t{1}, int64_t{7}, int64_t{-3},
                    int64_t{1000000}}) {
    auto cw = Paillier::ScalarMul(keys_->public_key, c.value(), BigInt(w));
    ASSERT_TRUE(cw.ok());
    auto m = Paillier::Decrypt(keys_->public_key, keys_->private_key,
                               cw.value());
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m.value().ToDecimalString(), BigInt(111 * w).ToDecimalString())
        << "w=" << w;
  }
}

TEST_F(PaillierTest, LinearFormMatchesPlaintext) {
  // The paper's Eq. (3): sum_i w_i m_i + b via prod E(m_i)^{w_i} * E(b).
  SecureRng rng = SecureRng::FromSeed(37);
  const std::vector<int64_t> m = {5, -3, 10, 0, 7};
  const std::vector<int64_t> w = {2, 4, -1, 9, -6};
  const int64_t b = 13;

  Ciphertext acc = Paillier::EncryptZeroDeterministic(keys_->public_key);
  for (size_t i = 0; i < m.size(); ++i) {
    auto ci = Paillier::Encrypt(keys_->public_key, BigInt(m[i]), rng);
    ASSERT_TRUE(ci.ok());
    auto term =
        Paillier::ScalarMul(keys_->public_key, ci.value(), BigInt(w[i]));
    ASSERT_TRUE(term.ok());
    acc = Paillier::Add(keys_->public_key, acc, term.value());
  }
  auto with_bias = Paillier::AddPlain(keys_->public_key, acc, BigInt(b));
  ASSERT_TRUE(with_bias.ok());

  auto result = Paillier::Decrypt(keys_->public_key, keys_->private_key,
                                  with_bias.value());
  ASSERT_TRUE(result.ok());
  int64_t expected = b;
  for (size_t i = 0; i < m.size(); ++i) expected += w[i] * m[i];
  EXPECT_EQ(result.value().ToInt64().value(), expected);
}

TEST_F(PaillierTest, NegateAndRerandomize) {
  SecureRng rng = SecureRng::FromSeed(41);
  auto c = Paillier::Encrypt(keys_->public_key, BigInt(77), rng);
  ASSERT_TRUE(c.ok());
  auto neg = Paillier::Negate(keys_->public_key, c.value());
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(Paillier::Decrypt(keys_->public_key, keys_->private_key,
                              neg.value())
                .value()
                .ToDecimalString(),
            "-77");

  auto rr = Paillier::Rerandomize(keys_->public_key, c.value(), rng);
  ASSERT_TRUE(rr.ok());
  EXPECT_NE(rr.value().value.Compare(c.value().value), 0);
  EXPECT_EQ(Paillier::Decrypt(keys_->public_key, keys_->private_key,
                              rr.value())
                .value()
                .ToDecimalString(),
            "77");
}

TEST_F(PaillierTest, RejectsOversizedPlaintext) {
  SecureRng rng = SecureRng::FromSeed(43);
  BigInt too_big = keys_->public_key.half_n() + BigInt(1);
  EXPECT_FALSE(Paillier::Encrypt(keys_->public_key, too_big, rng).ok());
  EXPECT_FALSE(Paillier::Encrypt(keys_->public_key, -too_big, rng).ok());
}

TEST_F(PaillierTest, PublicKeySerializationRoundTrip) {
  BufferWriter writer;
  keys_->public_key.Serialize(&writer);
  BufferReader reader(writer.bytes());
  auto pk = PaillierPublicKey::Deserialize(&reader);
  ASSERT_TRUE(pk.ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(pk.value().n().Compare(keys_->public_key.n()), 0);

  // Ciphertext created under the deserialized key decrypts correctly.
  SecureRng rng = SecureRng::FromSeed(47);
  auto c = Paillier::Encrypt(pk.value(), BigInt(-555), rng);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(Paillier::Decrypt(keys_->public_key, keys_->private_key,
                              c.value())
                .value()
                .ToDecimalString(),
            "-555");
}

TEST_F(PaillierTest, CiphertextSerializationRoundTrip) {
  SecureRng rng = SecureRng::FromSeed(53);
  auto c = Paillier::Encrypt(keys_->public_key, BigInt(31337), rng);
  ASSERT_TRUE(c.ok());
  BufferWriter writer;
  c.value().Serialize(&writer);
  BufferReader reader(writer.bytes());
  auto back = Ciphertext::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(back.value().value.Compare(c.value().value), 0);
}

TEST(PaillierKeygenTest, RejectsBadKeySizes) {
  Rng rng(1);
  EXPECT_FALSE(Paillier::GenerateKeyPair(32, rng).ok());
  EXPECT_FALSE(Paillier::GenerateKeyPair(127, rng).ok());
}

TEST(PaillierKeygenTest, DifferentKeySizesWork) {
  Rng rng(2);
  SecureRng srng = SecureRng::FromSeed(3);
  for (int bits : {128, 256}) {
    auto pair = Paillier::GenerateKeyPair(bits, rng);
    ASSERT_TRUE(pair.ok()) << bits;
    auto c = Paillier::Encrypt(pair.value().public_key, BigInt(99), srng);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(Paillier::Decrypt(pair.value().public_key,
                                pair.value().private_key, c.value())
                  .value()
                  .ToDecimalString(),
              "99");
  }
}

// ------------------------------------------------------------ Permutation

TEST(PermutationTest, IdentityIsNoOp) {
  Permutation id = Permutation::Identity(5);
  std::vector<int> v = {10, 20, 30, 40, 50};
  EXPECT_EQ(id.Apply(v), v);
  EXPECT_EQ(id.ApplyInverse(v), v);
}

TEST(PermutationTest, ApplyThenInverseRestores) {
  SecureRng rng = SecureRng::FromSeed(59);
  for (size_t n : {1u, 2u, 7u, 64u, 1000u}) {
    Permutation p = Permutation::Random(n, rng);
    std::vector<uint32_t> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = static_cast<uint32_t>(i * 3 + 1);
    EXPECT_EQ(p.ApplyInverse(p.Apply(v)), v) << "n=" << n;
    EXPECT_EQ(p.Apply(p.ApplyInverse(v)), v) << "n=" << n;
  }
}

TEST(PermutationTest, InverseObjectMatchesApplyInverse) {
  SecureRng rng = SecureRng::FromSeed(61);
  Permutation p = Permutation::Random(100, rng);
  Permutation inv = p.Inverse();
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  EXPECT_EQ(inv.Apply(p.Apply(v)), v);
  EXPECT_EQ(p.Inverse().Inverse(), p);
}

TEST(PermutationTest, ComposeAssociatesWithApply) {
  SecureRng rng = SecureRng::FromSeed(67);
  Permutation p = Permutation::Random(50, rng);
  Permutation q = Permutation::Random(50, rng);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i * i;
  EXPECT_EQ(q.Compose(p).Apply(v), q.Apply(p.Apply(v)));
}

TEST(PermutationTest, FromMappingValidates) {
  EXPECT_TRUE(Permutation::FromMapping({2, 0, 1}).ok());
  EXPECT_FALSE(Permutation::FromMapping({0, 0, 1}).ok());  // duplicate
  EXPECT_FALSE(Permutation::FromMapping({0, 3, 1}).ok());  // out of range
}

TEST(PermutationTest, RandomPermutationsDiffer) {
  SecureRng rng = SecureRng::FromSeed(71);
  Permutation p = Permutation::Random(64, rng);
  Permutation q = Permutation::Random(64, rng);
  EXPECT_FALSE(p == q);
}

TEST(PermutationTest, UniformityOverS3) {
  // All 6 permutations of 3 elements should appear with roughly equal
  // frequency — a basic correctness check on Fisher–Yates.
  SecureRng rng = SecureRng::FromSeed(73);
  std::map<std::vector<uint32_t>, int> counts;
  constexpr int kTrials = 6000;
  for (int t = 0; t < kTrials; ++t) {
    counts[Permutation::Random(3, rng).mapping()]++;
  }
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_GT(count, kTrials / 6 / 2);
    EXPECT_LT(count, kTrials / 6 * 2);
  }
}

// ------------------------------------------- Amortized Paillier hot path

class AmortizedPaillierTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(57);
    auto pair = Paillier::GenerateKeyPair(512, rng);
    ASSERT_TRUE(pair.ok()) << pair.status().ToString();
    keys_ = new PaillierKeyPair(std::move(pair).value());
  }
  static void TearDownTestSuite() {
    delete keys_;
    keys_ = nullptr;
  }

  int64_t DecryptToInt(const Ciphertext& c) {
    auto m = Paillier::Decrypt(keys_->public_key, keys_->private_key, c);
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    auto v = m.value().ToInt64();
    EXPECT_TRUE(v.ok());
    return v.value();
  }

  static PaillierKeyPair* keys_;
};

PaillierKeyPair* AmortizedPaillierTest::keys_ = nullptr;

TEST_F(AmortizedPaillierTest, PoolSequenceIsDeterministicForSameSeed) {
  // Without a background thread, consumption order == production order, so
  // the randomizer stream is a pure function of the seed — regardless of
  // whether values were pool-served or computed on demand.
  RandomizerPool::Options no_refill;
  no_refill.capacity = 8;
  no_refill.background_refill = false;

  RandomizerPool a(keys_->public_key, 91, no_refill);
  RandomizerPool b(keys_->public_key, 91, no_refill);
  a.Fill();  // a serves from the pool; b computes every value on demand
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(a.Take().Compare(b.Take()), 0) << "position " << i;
  }
  EXPECT_GT(a.stats().hits, 0u);
  EXPECT_EQ(b.stats().hits, 0u);

  RandomizerPool c(keys_->public_key, 92, no_refill);
  RandomizerPool d(keys_->public_key, 91, no_refill);
  EXPECT_NE(c.Take().Compare(d.Take()), 0) << "different seeds must diverge";
}

TEST_F(AmortizedPaillierTest, TakeManyMatchesRepeatedTake) {
  RandomizerPool::Options no_refill;
  no_refill.capacity = 4;
  no_refill.background_refill = false;

  RandomizerPool a(keys_->public_key, 93, no_refill);
  RandomizerPool b(keys_->public_key, 93, no_refill);
  a.Fill();
  std::vector<BigInt> batch = a.TakeMany(7);  // 4 hits + 3 misses
  ASSERT_EQ(batch.size(), 7u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].Compare(b.Take()), 0) << "position " << i;
  }
  EXPECT_EQ(a.stats().hits, 4u);
  EXPECT_EQ(a.stats().misses, 3u);
}

TEST_F(AmortizedPaillierTest, ExhaustedPoolComputesOnDemandAndRefills) {
  RandomizerPool::Options options;
  options.capacity = 4;
  options.low_water = 2;
  RandomizerPool pool(keys_->public_key, 95, options);
  pool.Fill();
  EXPECT_EQ(pool.available(), 4u);
  // Drain past capacity: the tail is computed on demand, never blocking.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(pool.Take().IsZero());
  }
  auto stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses, 10u);
  EXPECT_GT(stats.misses, 0u);
}

TEST_F(AmortizedPaillierTest, ConcurrentTakesAreSafeAndValid) {
  // TSan-targeted: hammer Take/Encrypt from several threads while the
  // background refill thread runs. Every randomizer must decrypt a valid
  // encryption of its plaintext.
  RandomizerPool::Options options;
  options.capacity = 16;
  options.low_water = 8;
  RandomizerPool pool(keys_->public_key, 97, options);
  pool.Fill();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> threads;
  std::vector<Status> failures(kThreads, Status::OK());
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto c = pool.Encrypt(BigInt(t * 1000 + i));
        if (!c.ok()) {
          failures[t] = c.status();
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const Status& st : failures) EXPECT_TRUE(st.ok()) << st.ToString();
  auto stats = pool.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(AmortizedPaillierTest, PoolEncryptAndRerandomizeDecryptCorrectly) {
  RandomizerPool pool(keys_->public_key, 99);
  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{424242},
                    int64_t{-987654321}}) {
    auto c = pool.Encrypt(BigInt(m));
    ASSERT_TRUE(c.ok()) << c.status().ToString();
    EXPECT_EQ(DecryptToInt(c.value()), m);

    Ciphertext fresh = pool.Rerandomize(c.value());
    EXPECT_NE(fresh.value.Compare(c.value().value), 0)
        << "rerandomization must change the ciphertext bits";
    EXPECT_EQ(DecryptToInt(fresh), m) << "but never the plaintext";
  }
}

TEST_F(AmortizedPaillierTest, ScalarMulPrecomputedMatchesScalarMulBitExact) {
  SecureRng rng = SecureRng::FromSeed(101);
  auto c = Paillier::Encrypt(keys_->public_key, BigInt(777), rng);
  ASSERT_TRUE(c.ok());
  auto base = Paillier::PrecomputeScalarMulBase(
      keys_->public_key, c.value(), /*max_weight_bits=*/16,
      /*allow_negative=*/true, /*fan_out_hint=*/64);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  for (int64_t w : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{2},
                    int64_t{1000}, int64_t{-1000}, int64_t{65535}}) {
    auto via_table =
        Paillier::ScalarMulPrecomputed(base.value(), BigInt(w));
    auto via_modexp =
        Paillier::ScalarMul(keys_->public_key, c.value(), BigInt(w));
    ASSERT_TRUE(via_table.ok() && via_modexp.ok()) << "w " << w;
    EXPECT_EQ(via_table.value().value.Compare(via_modexp.value().value), 0)
        << "w " << w;
  }
}

TEST_F(AmortizedPaillierTest, MontResidentChainMatchesCanonicalBitExact) {
  // The same Eq. (3) accumulation, once with canonical-form primitives and
  // once Montgomery-resident. Canonicalization is unique, so the final
  // ciphertexts must agree bit for bit — the wire format never changes.
  SecureRng rng = SecureRng::FromSeed(103);
  const std::vector<int64_t> values = {37, -12, 255, 1};
  const std::vector<int64_t> weights = {14, -3, 127, 1};
  std::vector<Ciphertext> in;
  for (int64_t v : values) {
    auto c = Paillier::Encrypt(keys_->public_key, BigInt(v), rng);
    ASSERT_TRUE(c.ok());
    in.push_back(std::move(c).value());
  }

  Ciphertext canonical = Paillier::EncryptZeroDeterministic(keys_->public_key);
  for (size_t i = 0; i < in.size(); ++i) {
    auto term =
        Paillier::ScalarMul(keys_->public_key, in[i], BigInt(weights[i]));
    ASSERT_TRUE(term.ok());
    canonical = Paillier::Add(keys_->public_key, canonical, term.value());
  }
  auto canonical_biased =
      Paillier::AddPlain(keys_->public_key, canonical, BigInt(-17));
  ASSERT_TRUE(canonical_biased.ok());

  MontCiphertext acc = Paillier::EncryptZeroMontResident(keys_->public_key);
  for (size_t i = 0; i < in.size(); ++i) {
    MontCiphertext c = Paillier::ToMontResident(keys_->public_key, in[i]);
    auto term =
        Paillier::ScalarMulMont(keys_->public_key, c, BigInt(weights[i]));
    ASSERT_TRUE(term.ok()) << term.status().ToString();
    acc = Paillier::AddMont(keys_->public_key, acc, term.value());
  }
  auto biased = Paillier::AddPlainMont(keys_->public_key, acc, BigInt(-17));
  ASSERT_TRUE(biased.ok());
  Ciphertext resident =
      Paillier::FromMontResident(keys_->public_key, biased.value());

  EXPECT_EQ(resident.value.Compare(canonical_biased.value().value), 0);
  // And both decrypt to the expected affine form.
  int64_t expected = -17;
  for (size_t i = 0; i < values.size(); ++i) expected += values[i] * weights[i];
  EXPECT_EQ(DecryptToInt(resident), expected);
}

TEST_F(AmortizedPaillierTest, EncryptWithRandomizerDecrypts) {
  // A unit randomizer gives the deterministic g^m form; a pool randomizer
  // gives a semantically identical but randomized ciphertext.
  auto det = Paillier::EncryptWithRandomizer(keys_->public_key, BigInt(55),
                                             BigInt(1));
  ASSERT_TRUE(det.ok());
  EXPECT_EQ(DecryptToInt(det.value()), 55);

  RandomizerPool pool(keys_->public_key, 105);
  auto randomized = Paillier::EncryptWithRandomizer(keys_->public_key,
                                                    BigInt(55), pool.Take());
  ASSERT_TRUE(randomized.ok());
  EXPECT_EQ(DecryptToInt(randomized.value()), 55);
  EXPECT_NE(randomized.value().value.Compare(det.value().value), 0);
}

}  // namespace
}  // namespace ppstream
