// Unit tests for layers, the model container, training, and the model zoo.
// Includes numerical gradient checks for every trainable layer.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/dataset.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "nn/model_zoo.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace ppstream {
namespace {

// Numerical gradient check: perturb each input element, compare to the
// analytic gradient from Backward with a random upstream gradient.
void CheckInputGradient(Layer& layer, const DoubleTensor& input,
                        double tol = 1e-5) {
  Rng rng(99);
  auto out = layer.Forward(input);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  DoubleTensor grad_out{out.value().shape()};
  for (int64_t i = 0; i < grad_out.NumElements(); ++i) {
    grad_out[i] = rng.NextUniform(-1, 1);
  }
  layer.ZeroGrads();
  auto grad_in = layer.Backward(input, grad_out);
  ASSERT_TRUE(grad_in.ok()) << grad_in.status().ToString();

  const double eps = 1e-6;
  for (int64_t i = 0; i < input.NumElements(); ++i) {
    DoubleTensor plus = input, minus = input;
    plus[i] += eps;
    minus[i] -= eps;
    auto f_plus = layer.Forward(plus);
    auto f_minus = layer.Forward(minus);
    ASSERT_TRUE(f_plus.ok() && f_minus.ok());
    double numeric = 0;
    for (int64_t j = 0; j < grad_out.NumElements(); ++j) {
      numeric +=
          grad_out[j] * (f_plus.value()[j] - f_minus.value()[j]) / (2 * eps);
    }
    EXPECT_NEAR(grad_in.value()[i], numeric, tol) << "input element " << i;
  }
}

DoubleTensor RandomTensor(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  DoubleTensor t{shape};
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    t[i] = rng.NextUniform(-2, 2);
  }
  return t;
}

TEST(LayerGradTest, Dense) {
  Rng rng(1);
  auto layer = DenseLayer::Random(5, 3, rng);
  CheckInputGradient(*layer, RandomTensor(Shape{5}, 2));
}

TEST(LayerGradTest, Conv2D) {
  Conv2DGeometry g;
  g.in_channels = 2;
  g.in_height = 5;
  g.in_width = 5;
  g.out_channels = 3;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 2;
  g.padding = 1;
  Rng rng(3);
  auto layer = Conv2DLayer::Random(g, rng);
  CheckInputGradient(*layer, RandomTensor(Shape{2, 5, 5}, 4));
}

TEST(LayerGradTest, BatchNorm) {
  BatchNormLayer layer(2);
  layer.SetStatistics({0.5, -0.5}, {2.0, 0.7});
  layer.SetAffine({1.5, 0.8}, {0.1, -0.3});
  CheckInputGradient(layer, RandomTensor(Shape{2, 3, 3}, 5));
}

TEST(LayerGradTest, ReluAwayFromKink) {
  ReluLayer layer;
  DoubleTensor in(Shape{4}, {-1.5, -0.3, 0.4, 2.0});
  CheckInputGradient(layer, in);
}

TEST(LayerGradTest, Sigmoid) {
  SigmoidLayer layer;
  CheckInputGradient(layer, RandomTensor(Shape{6}, 6));
}

TEST(LayerGradTest, Softmax) {
  SoftmaxLayer layer;
  CheckInputGradient(layer, RandomTensor(Shape{5}, 7));
}

TEST(LayerGradTest, MaxPoolAwayFromTies) {
  MaxPool2DLayer layer(2, 2);
  DoubleTensor in(Shape{1, 4, 4}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                                   14, 15, 16});
  CheckInputGradient(layer, in);
}

TEST(LayerGradTest, AvgPool) {
  AvgPool2DLayer layer(2, 2);
  CheckInputGradient(layer, RandomTensor(Shape{2, 4, 4}, 8));
}

TEST(LayerGradTest, ScaledSigmoid) {
  ScaledSigmoidLayer layer(1.7);
  CheckInputGradient(layer, RandomTensor(Shape{5}, 9));
}

TEST(LayerGradTest, ScalarScale) {
  ScalarScaleLayer layer(-0.6);
  CheckInputGradient(layer, RandomTensor(Shape{5}, 10));
}

TEST(LayerTest, OpClassification) {
  Rng rng(11);
  EXPECT_EQ(DenseLayer::Random(2, 2, rng)->op_class(), OpClass::kLinear);
  EXPECT_EQ(BatchNormLayer(2).op_class(), OpClass::kLinear);
  EXPECT_EQ(AvgPool2DLayer(2, 2).op_class(), OpClass::kLinear);
  EXPECT_EQ(FlattenLayer().op_class(), OpClass::kLinear);
  EXPECT_EQ(ScalarScaleLayer(2).op_class(), OpClass::kLinear);
  EXPECT_EQ(ReluLayer().op_class(), OpClass::kNonLinear);
  EXPECT_EQ(SigmoidLayer().op_class(), OpClass::kNonLinear);
  EXPECT_EQ(SoftmaxLayer().op_class(), OpClass::kNonLinear);
  EXPECT_EQ(MaxPool2DLayer(2, 2).op_class(), OpClass::kNonLinear);
  EXPECT_EQ(ScaledSigmoidLayer(1).op_class(), OpClass::kMixed);
}

TEST(ModelTest, AddValidatesShapes) {
  Rng rng(12);
  Model model(Shape{4});
  EXPECT_TRUE(model.Add(DenseLayer::Random(4, 3, rng)).ok());
  // Next layer must accept 3 inputs.
  EXPECT_FALSE(model.Add(DenseLayer::Random(4, 2, rng)).ok());
  EXPECT_TRUE(model.Add(DenseLayer::Random(3, 2, rng)).ok());
  auto out = model.OutputShape();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), (Shape{2}));
}

TEST(ModelTest, ForwardMatchesManualComposition) {
  Rng rng(13);
  Model model(Shape{3});
  auto dense = DenseLayer::Random(3, 2, rng);
  DenseLayer* dense_ptr = dense.get();
  ASSERT_TRUE(model.Add(std::move(dense)).ok());
  ASSERT_TRUE(model.Add(std::make_unique<ReluLayer>()).ok());

  DoubleTensor x(Shape{3}, {1, -2, 0.5});
  auto direct = dense_ptr->Forward(x);
  ASSERT_TRUE(direct.ok());
  auto expected = Relu(direct.value());
  auto got = model.Forward(x);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().data(), expected.data());
}

TEST(ModelTest, ForwardRejectsWrongInputShape) {
  Model model(Shape{3});
  EXPECT_FALSE(model.Forward(DoubleTensor{Shape{4}}).ok());
}

TEST(ModelTest, CloneIsDeep) {
  Rng rng(14);
  Model model(Shape{2});
  ASSERT_TRUE(model.Add(DenseLayer::Random(2, 2, rng)).ok());
  Model copy = model.Clone();
  // Mutate the original; the clone must be unaffected.
  model.layer(0).MutateParameters([](double) { return 0.0; });
  DoubleTensor x(Shape{2}, {1, 1});
  auto orig_out = model.Forward(x);
  auto copy_out = copy.Forward(x);
  ASSERT_TRUE(orig_out.ok() && copy_out.ok());
  EXPECT_DOUBLE_EQ(orig_out.value()[0], 0.0);
  EXPECT_NE(copy_out.value()[0], 0.0);
}

TEST(ModelTest, SerializationRoundTrip) {
  Rng rng(15);
  Model model(Shape{1, 6, 6}, "roundtrip");
  Conv2DGeometry g;
  g.in_channels = 1;
  g.in_height = 6;
  g.in_width = 6;
  g.out_channels = 2;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 1;
  g.padding = 0;
  ASSERT_TRUE(model.Add(Conv2DLayer::Random(g, rng)).ok());
  ASSERT_TRUE(model.Add(std::make_unique<BatchNormLayer>(2)).ok());
  ASSERT_TRUE(model.Add(std::make_unique<ReluLayer>()).ok());
  ASSERT_TRUE(model.Add(std::make_unique<MaxPool2DLayer>(2, 2)).ok());
  ASSERT_TRUE(model.Add(std::make_unique<FlattenLayer>()).ok());
  ASSERT_TRUE(model.Add(DenseLayer::Random(8, 4, rng)).ok());
  ASSERT_TRUE(model.Add(std::make_unique<ScaledSigmoidLayer>(0.7)).ok());
  ASSERT_TRUE(model.Add(DenseLayer::Random(4, 3, rng)).ok());
  ASSERT_TRUE(model.Add(std::make_unique<SoftmaxLayer>()).ok());

  BufferWriter writer;
  model.Serialize(&writer);
  BufferReader reader(writer.bytes());
  auto back = Model::Deserialize(&reader);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().name(), "roundtrip");
  EXPECT_EQ(back.value().NumLayers(), model.NumLayers());

  DoubleTensor x = RandomTensor(Shape{1, 6, 6}, 16);
  auto a = model.Forward(x);
  auto b = back.value().Forward(x);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int64_t i = 0; i < a.value().NumElements(); ++i) {
    EXPECT_DOUBLE_EQ(a.value()[i], b.value()[i]);
  }
}

TEST(ModelTest, SaveLoadFile) {
  Rng rng(17);
  Model model(Shape{2}, "filetest");
  ASSERT_TRUE(model.Add(DenseLayer::Random(2, 2, rng)).ok());
  const std::string path = ::testing::TempDir() + "/pps_model.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto back = Model::LoadFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().name(), "filetest");
}

TEST(ModelTest, ReplaceMaxPoolingKeepsShapes) {
  Rng rng(18);
  Model model(Shape{2, 8, 8});
  ASSERT_TRUE(model.Add(std::make_unique<MaxPool2DLayer>(2, 2)).ok());
  ASSERT_TRUE(model.Add(std::make_unique<FlattenLayer>()).ok());
  auto rewritten = model.ReplaceMaxPooling();
  ASSERT_TRUE(rewritten.ok());
  // MaxPool -> Conv + ReLU, so one extra layer.
  EXPECT_EQ(rewritten.value().NumLayers(), 3u);
  EXPECT_EQ(rewritten.value().layer(0).kind(), LayerKind::kConv2D);
  EXPECT_EQ(rewritten.value().layer(1).kind(), LayerKind::kRelu);
  auto s1 = model.OutputShape();
  auto s2 = rewritten.value().OutputShape();
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(s1.value(), s2.value());
}

TEST(ModelTest, ReplaceMaxPoolingIsAvgOnPositiveInputs) {
  // On non-negative inputs the rewrite computes relu(avg) = avg per window.
  Model model(Shape{1, 4, 4});
  ASSERT_TRUE(model.Add(std::make_unique<MaxPool2DLayer>(2, 2)).ok());
  auto rewritten = model.ReplaceMaxPooling();
  ASSERT_TRUE(rewritten.ok());
  DoubleTensor x(Shape{1, 4, 4},
                 {4, 4, 8, 8, 4, 4, 8, 8, 1, 1, 2, 2, 1, 1, 2, 2});
  auto out = rewritten.value().Forward(x);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value()[0], 4);
  EXPECT_DOUBLE_EQ(out.value()[1], 8);
  EXPECT_DOUBLE_EQ(out.value()[2], 1);
  EXPECT_DOUBLE_EQ(out.value()[3], 2);
}

TEST(TrainerTest, LearnsLinearlySeparableData) {
  DatasetSplit data = MakeTabularDataset("toy", 6, 200, 100, 4.0, 21);
  Rng rng(22);
  Model model(Shape{6}, "toy");
  ASSERT_TRUE(model.Add(DenseLayer::Random(6, 8, rng)).ok());
  ASSERT_TRUE(model.Add(std::make_unique<ReluLayer>()).ok());
  ASSERT_TRUE(model.Add(DenseLayer::Random(8, 2, rng)).ok());
  ASSERT_TRUE(model.Add(std::make_unique<SoftmaxLayer>()).ok());

  TrainConfig config;
  config.epochs = 30;
  config.learning_rate = 0.05;
  auto stats = TrainModel(&model, data.train, config);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  auto acc = EvaluateAccuracy(model, data.test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(acc.value(), 0.9) << "separable data should be learnable";
}

TEST(TrainerTest, RequiresSoftmaxOutput) {
  DatasetSplit data = MakeTabularDataset("toy", 2, 10, 5, 2.0, 23);
  Rng rng(24);
  Model model(Shape{2});
  ASSERT_TRUE(model.Add(DenseLayer::Random(2, 2, rng)).ok());
  TrainConfig config;
  EXPECT_FALSE(TrainModel(&model, data.train, config).ok());
}

TEST(TrainerTest, RejectsEmptyData) {
  Model model(Shape{2});
  Dataset empty;
  TrainConfig config;
  EXPECT_FALSE(TrainModel(&model, empty, config).ok());
  EXPECT_FALSE(EvaluateAccuracy(model, empty).ok());
}

TEST(DatasetTest, TabularShapesAndLabels) {
  DatasetSplit split = MakeTabularDataset("t", 7, 50, 20, 3.0, 31);
  EXPECT_EQ(split.train.size(), 50u);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.train.num_classes, 2);
  for (const auto& s : split.train.samples) {
    EXPECT_EQ(s.shape(), (Shape{7}));
  }
  for (int64_t label : split.train.labels) {
    EXPECT_TRUE(label == 0 || label == 1);
  }
}

TEST(DatasetTest, ImageShapes) {
  DatasetSplit split = MakeImageDataset("img", 3, 8, 8, 10, 30, 10, 1.0, 32);
  EXPECT_EQ(split.train.samples[0].shape(), (Shape{3, 8, 8}));
  EXPECT_EQ(split.train.num_classes, 10);
}

TEST(DatasetTest, DeterministicForSameSeed) {
  DatasetSplit a = MakeTabularDataset("t", 4, 10, 5, 2.0, 77);
  DatasetSplit b = MakeTabularDataset("t", 4, 10, 5, 2.0, 77);
  EXPECT_EQ(a.train.samples[0].data(), b.train.samples[0].data());
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(ZooTest, AllModelsBuildAndShapesCheck) {
  for (const ZooInfo& info : AllZooInfos()) {
    auto model = MakeZooModel(info.id, 7);
    ASSERT_TRUE(model.ok()) << info.dataset_name;
    auto out = model.value().OutputShape();
    ASSERT_TRUE(out.ok()) << info.dataset_name;
    const int64_t classes = info.id == ZooModelId::kBreast ||
                                    info.id == ZooModelId::kHeart ||
                                    info.id == ZooModelId::kCardio
                                ? 2
                                : 10;
    EXPECT_EQ(out.value(), (Shape{classes})) << info.dataset_name;
    EXPECT_GT(model.value().ParameterCount(), 0) << info.dataset_name;
  }
}

TEST(ZooTest, DatasetsMatchModelInputs) {
  for (const ZooInfo& info : AllZooInfos()) {
    DatasetSplit split = MakeZooDataset(info.id, 0.002, 5);
    auto model = MakeZooModel(info.id, 7);
    ASSERT_TRUE(model.ok());
    EXPECT_EQ(split.train.samples[0].shape(), model.value().input_shape())
        << info.dataset_name;
  }
}

TEST(ZooTest, TableIIIMetadataMatchesPaper) {
  EXPECT_EQ(AllZooInfos().size(), 9u);
  const ZooInfo& breast = GetZooInfo(ZooModelId::kBreast);
  EXPECT_EQ(breast.paper_train_samples, 456u);
  EXPECT_EQ(breast.paper_test_samples, 113u);
  const ZooInfo& cifar3 = GetZooInfo(ZooModelId::kCifar3);
  EXPECT_EQ(std::string(cifar3.architecture), "VGG19");
  EXPECT_EQ(cifar3.paper_model_servers, 6);
  EXPECT_EQ(cifar3.paper_data_servers, 3);
}

TEST(ZooTest, TabularModelTrainsToPaperBallpark) {
  DatasetSplit split = MakeZooDataset(ZooModelId::kBreast, 1.0, 41);
  auto model = MakeTrainedZooModel(ZooModelId::kBreast, split.train, 42);
  ASSERT_TRUE(model.ok());
  auto acc = EvaluateAccuracy(model.value(), split.test);
  ASSERT_TRUE(acc.ok());
  EXPECT_GT(acc.value(), 0.9);  // paper: 97.34%
}

}  // namespace
}  // namespace ppstream
