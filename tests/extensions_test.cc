// Tests for the deployment extensions: the model-stealing rate limiter
// (paper §II-C), the serializable data-provider plan view, heterogeneous
// server allocation (posed as future work in §IV-C and supported by our
// allocator), and parameterized protocol sweeps across scaling factors
// and key sizes.

#include <gtest/gtest.h>

#include <memory>

#include "core/plan.h"
#include "core/protocol.h"
#include "core/rate_limiter.h"
#include "nn/layers.h"
#include "planner/allocation.h"
#include "util/rng.h"

namespace ppstream {
namespace {

// ---------------------------------------------------------- rate limiter

TEST(RateLimiterTest, AdmitsUpToBurstThenRejects) {
  RequestRateLimiter limiter(/*requests_per_second=*/1.0, /*burst=*/3.0);
  EXPECT_TRUE(limiter.Admit(1).ok());
  EXPECT_TRUE(limiter.Admit(1).ok());
  EXPECT_TRUE(limiter.Admit(1).ok());
  Status rejected = limiter.Admit(1);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
}

TEST(RateLimiterTest, RefillsOverTime) {
  RequestRateLimiter limiter(2.0, 2.0);
  EXPECT_TRUE(limiter.Admit(7).ok());
  EXPECT_TRUE(limiter.Admit(7).ok());
  EXPECT_FALSE(limiter.Admit(7).ok());
  limiter.AdvanceTimeForTesting(0.6);  // 1.2 tokens refilled
  EXPECT_TRUE(limiter.Admit(7).ok());
  EXPECT_FALSE(limiter.Admit(7).ok());
}

TEST(RateLimiterTest, ClientsAreIndependent) {
  RequestRateLimiter limiter(1.0, 1.0);
  EXPECT_TRUE(limiter.Admit(1).ok());
  EXPECT_FALSE(limiter.Admit(1).ok());
  EXPECT_TRUE(limiter.Admit(2).ok()) << "client 2 has its own bucket";
  EXPECT_DOUBLE_EQ(limiter.AvailableTokens(3), 1.0);  // unseen = full
}

TEST(RateLimiterTest, BucketNeverExceedsBurst) {
  RequestRateLimiter limiter(100.0, 5.0);
  limiter.AdvanceTimeForTesting(1000.0);
  EXPECT_LE(limiter.AvailableTokens(1), 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(limiter.Admit(1).ok());
  EXPECT_FALSE(limiter.Admit(1).ok());
}

// ------------------------------------------------------ plan view

Model TinyModel(uint64_t seed) {
  Rng rng(seed);
  Model model(Shape{4}, "tiny");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 5, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(5, 3, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  return model;
}

TEST(PlanViewTest, RoundTripPreservesDataProviderState) {
  Model model = TinyModel(1);
  auto plan = CompilePlan(model, 1000);
  ASSERT_TRUE(plan.ok());

  BufferWriter writer;
  plan.value().SerializeDataProviderView(&writer);
  BufferReader reader(writer.bytes());
  auto view = InferencePlan::DeserializeDataProviderView(&reader);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  EXPECT_TRUE(view.value().is_data_provider_view);
  EXPECT_EQ(view.value().scale, plan.value().scale);
  EXPECT_EQ(view.value().input_shape, plan.value().input_shape);
  EXPECT_EQ(view.value().NumRounds(), plan.value().NumRounds());
  for (size_t r = 0; r < plan.value().NumRounds(); ++r) {
    EXPECT_EQ(view.value().linear_stages[r].output_scale_power,
              plan.value().linear_stages[r].output_scale_power);
    EXPECT_EQ(view.value().nonlinear_segments[r].layers.size(),
              plan.value().nonlinear_segments[r].layers.size());
    // Weights must NOT travel with the view.
    EXPECT_TRUE(view.value().linear_stages[r].ops.empty());
  }
}

TEST(PlanViewTest, ViewDrivesDataProviderInRealProtocol) {
  Model model = TinyModel(2);
  auto plan_or = CompilePlan(model, 1000);
  ASSERT_TRUE(plan_or.ok());
  auto full_plan =
      std::make_shared<InferencePlan>(std::move(plan_or).value());

  // Ship the view across the "wire".
  BufferWriter writer;
  full_plan->SerializeDataProviderView(&writer);
  BufferReader reader(writer.bytes());
  auto view_or = InferencePlan::DeserializeDataProviderView(&reader);
  ASSERT_TRUE(view_or.ok());
  auto view = std::make_shared<InferencePlan>(std::move(view_or).value());

  Rng rng(3);
  auto keys = Paillier::GenerateKeyPair(256, rng);
  ASSERT_TRUE(keys.ok());

  // MP uses the full plan; DP only the deserialized view.
  ModelProvider mp(full_plan, keys.value().public_key, 4);
  DataProvider dp(view, keys.value(), 5);

  DoubleTensor x(Shape{4}, {0.5, -1.0, 1.5, 0.25});
  auto secure = RunProtocolInference(mp, dp, 0, x);
  ASSERT_TRUE(secure.ok()) << secure.status().ToString();
  auto reference = RunScaledPlainInference(*full_plan, x);
  ASSERT_TRUE(reference.ok());
  for (int64_t i = 0; i < reference.value().NumElements(); ++i) {
    EXPECT_DOUBLE_EQ(secure.value()[i], reference.value()[i]);
  }
}

TEST(PlanViewTest, ViewCannotDriveModelProvider) {
  Model model = TinyModel(6);
  auto plan = CompilePlan(model, 1000);
  ASSERT_TRUE(plan.ok());
  BufferWriter writer;
  plan.value().SerializeDataProviderView(&writer);
  BufferReader reader(writer.bytes());
  auto view_or = InferencePlan::DeserializeDataProviderView(&reader);
  ASSERT_TRUE(view_or.ok());
  auto view = std::make_shared<InferencePlan>(std::move(view_or).value());
  Rng rng(7);
  auto keys = Paillier::GenerateKeyPair(128, rng);
  ASSERT_TRUE(keys.ok());
  EXPECT_DEATH(ModelProvider(view, keys.value().public_key, 8),
               "data-provider view");
}

TEST(PlanViewTest, TruncatedViewFails) {
  Model model = TinyModel(9);
  auto plan = CompilePlan(model, 1000);
  ASSERT_TRUE(plan.ok());
  BufferWriter writer;
  plan.value().SerializeDataProviderView(&writer);
  std::vector<uint8_t> bytes = writer.bytes();
  bytes.resize(bytes.size() / 2);
  BufferReader reader(bytes);
  EXPECT_FALSE(InferencePlan::DeserializeDataProviderView(&reader).ok());
}

// ------------------------------------------- heterogeneous allocation

TEST(HeterogeneousAllocationTest, RespectsPerServerCapacities) {
  // §IV-C poses heterogeneous servers as future work; the allocator
  // already supports per-server core counts.
  AllocationProblem p;
  p.layer_times = {8.0, 2.0, 4.0, 1.0};
  p.layer_class = {+1, +1, -1, -1};
  p.server_cores = {8, 2, 4};  // one big + one small model server
  p.server_class = {+1, +1, -1};
  p.hyper_threading = false;
  auto alloc = IlpAllocator::Solve(p);
  ASSERT_TRUE(alloc.ok()) << alloc.status().ToString();
  std::vector<int> used(3, 0);
  for (size_t i = 0; i < p.layer_times.size(); ++i) {
    used[alloc.value().server_of_layer[i]] +=
        alloc.value().threads_of_layer[i];
    EXPECT_EQ(p.server_class[alloc.value().server_of_layer[i]],
              p.layer_class[i]);
  }
  for (size_t j = 0; j < 3; ++j) EXPECT_LE(used[j], p.server_cores[j]);
  // The heavy layer should land where capacity allows many threads.
  const int heavy_server = alloc.value().server_of_layer[0];
  EXPECT_EQ(heavy_server, 0) << "8s layer needs the 8-core server";
}

// ------------------------------------------- parameterized protocol sweep

struct SweepParam {
  int64_t scale;
  int key_bits;
};

class ProtocolSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProtocolSweepTest, ExactAgreementAcrossScalesAndKeys) {
  const SweepParam param = GetParam();
  Model model = TinyModel(31);
  auto plan_or = CompilePlan(model, param.scale);
  ASSERT_TRUE(plan_or.ok());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());

  Rng rng(32 + static_cast<uint64_t>(param.key_bits));
  auto keys = Paillier::GenerateKeyPair(param.key_bits, rng);
  ASSERT_TRUE(keys.ok());
  ASSERT_TRUE(plan->CheckFitsKey(keys.value().public_key.n()).ok());

  ModelProvider mp(plan, keys.value().public_key, 33);
  DataProvider dp(plan, keys.value(), 34);
  DoubleTensor x(Shape{4}, {1.25, -0.75, 0.5, -2.0});
  auto secure = RunProtocolInference(mp, dp, 0, x);
  ASSERT_TRUE(secure.ok()) << secure.status().ToString();
  auto reference = RunScaledPlainInference(*plan, x);
  ASSERT_TRUE(reference.ok());
  for (int64_t i = 0; i < reference.value().NumElements(); ++i) {
    EXPECT_DOUBLE_EQ(secure.value()[i], reference.value()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScaleKeyMatrix, ProtocolSweepTest,
    ::testing::Values(SweepParam{1, 128}, SweepParam{10, 128},
                      SweepParam{1000, 128}, SweepParam{1000000, 256},
                      SweepParam{100, 512}, SweepParam{10000, 256}),
    [](const ::testing::TestParamInfo<SweepParam>& sweep_info) {
      return "F" + std::to_string(sweep_info.param.scale) + "_k" +
             std::to_string(sweep_info.param.key_bits);
    });

}  // namespace
}  // namespace ppstream
