// Tests for the transport boundary: wire-format encode/decode hardening,
// framed dispatch against real providers, remote stubs, the TCP loopback
// deployment (bit-exact with the scaled plain reference), and the privacy
// separation (plaintext never reaches the model provider's side of the
// wire; weights never reach the data provider).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/protocol.h"
#include "net/server.h"
#include "net/transport.h"
#include "net/wire.h"
#include "nn/layers.h"
#include "stream/engine.h"
#include "stream/message.h"
#include "util/rng.h"

namespace ppstream {
namespace {

// ----------------------------------------------------------------- wire

WireFrame SampleRequest() {
  return MakeRequestFrame(WireMethod::kMpProcessRound, /*request_id=*/42,
                          /*round=*/3, {1, 2, 3, 4, 5});
}

TEST(WireTest, RequestFrameRoundTrip) {
  const WireFrame frame = SampleRequest();
  const auto bytes = EncodeFrame(frame);
  EXPECT_EQ(bytes.size(), frame.WireSize());
  auto back = DecodeFrame(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->version, kWireVersion);
  EXPECT_EQ(back->method, WireMethod::kMpProcessRound);
  EXPECT_FALSE(back->is_response);
  EXPECT_EQ(back->status, StatusCode::kOk);
  EXPECT_EQ(back->request_id, 42u);
  EXPECT_EQ(back->round, 3u);
  EXPECT_EQ(back->payload, frame.payload);
}

TEST(WireTest, ErrorFrameCarriesStatus) {
  const WireFrame request = SampleRequest();
  const WireFrame error =
      MakeErrorFrame(request, Status::DeadlineExceeded("too slow"));
  auto back = DecodeFrame(EncodeFrame(error));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->is_response);
  const Status status = FrameStatus(*back);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(status.message(), "too slow");
}

TEST(WireTest, RejectsForeignAndMalformedHeaders) {
  const auto bytes = EncodeFrame(SampleRequest());

  auto corrupted = [&](size_t offset, uint8_t value) {
    std::vector<uint8_t> copy = bytes;
    copy[offset] = value;
    return DecodeFrame(copy);
  };

  // magic (offset 0), version (offset 4), method (offset 6), flags
  // (offset 8), status (offset 9) — each validated by name.
  EXPECT_EQ(corrupted(0, 'X').status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(corrupted(4, 0xEE).status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(corrupted(6, 0xEE).status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(corrupted(8, 0xF0).status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(corrupted(9, 0xEE).status().code(), StatusCode::kProtocolError);

  // A request frame must not carry an error status.
  EXPECT_EQ(corrupted(9, 1).status().code(), StatusCode::kProtocolError);

  // Trailing garbage after the announced payload.
  std::vector<uint8_t> extended = bytes;
  extended.push_back(0);
  EXPECT_FALSE(DecodeFrame(extended).ok());
}

TEST(WireTest, TruncationAtEveryLengthFails) {
  const auto bytes = EncodeFrame(SampleRequest());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DecodeFrame(prefix).ok()) << "prefix " << len;
  }
}

TEST(WireTest, BitFlipsNeverCrash) {
  const auto bytes = EncodeFrame(SampleRequest());
  // Flip every bit of the encoded frame one at a time; decode must return
  // a Status each time (possibly OK for opaque payload bits) — never UB.
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> copy = bytes;
      copy[byte] ^= static_cast<uint8_t>(1u << bit);
      (void)DecodeFrame(copy);
    }
  }
}

TEST(WireTest, HostilePayloadLengthIsBoundedBeforeAllocation) {
  WireFrame frame = SampleRequest();
  auto bytes = EncodeFrame(frame);
  // payload_len lives at offset 26; write an absurd value.
  const uint64_t huge = ~0ULL;
  std::memcpy(bytes.data() + 26, &huge, sizeof(huge));
  uint64_t payload_len = 0;
  auto header =
      DecodeFrameHeader(bytes.data(), kFrameHeaderBytes, &payload_len);
  EXPECT_EQ(header.status().code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------- fixture (tiny model)

class NetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(7);
    auto pair = Paillier::GenerateKeyPair(256, rng);
    ASSERT_TRUE(pair.ok());
    keys_ = new PaillierKeyPair(std::move(pair).value());

    Rng mrng(8);
    Model model(Shape{4}, "net");
    PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 6, mrng)));
    PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
    PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 3, mrng)));
    PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
    auto plan = CompilePlan(model, 1000);
    ASSERT_TRUE(plan.ok());
    plan_ = new std::shared_ptr<const InferencePlan>(
        std::make_shared<const InferencePlan>(std::move(plan).value()));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete plan_;
  }

  static DoubleTensor MakeInput(uint64_t seed) {
    Rng rng(seed);
    DoubleTensor x{Shape{4}};
    for (int64_t j = 0; j < 4; ++j) x[j] = rng.NextUniform(-2, 2);
    return x;
  }

  /// A channel whose far end is a real ModelProvider behind the server
  /// dispatcher — the full wire path without sockets.
  static std::shared_ptr<InProcessFrameChannel> ChannelTo(
      std::shared_ptr<ModelProvider> mp) {
    return std::make_shared<InProcessFrameChannel>(
        [mp](const WireFrame& request) {
          return DispatchModelProviderFrame(*mp, request);
        });
  }

  static PaillierKeyPair* keys_;
  static std::shared_ptr<const InferencePlan>* plan_;
};

PaillierKeyPair* NetTest::keys_ = nullptr;
std::shared_ptr<const InferencePlan>* NetTest::plan_ = nullptr;

// ----------------------------------------------- serialization hardening

TEST_F(NetTest, DataProviderViewTruncationFails) {
  BufferWriter writer;
  (*plan_)->SerializeDataProviderView(&writer);
  const auto bytes = writer.TakeBytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    BufferReader reader(bytes.data(), len);
    EXPECT_FALSE(InferencePlan::DeserializeDataProviderView(&reader).ok())
        << "prefix " << len;
  }
}

TEST_F(NetTest, DataProviderViewBitFlipsNeverCrash) {
  BufferWriter writer;
  (*plan_)->SerializeDataProviderView(&writer);
  const auto bytes = writer.TakeBytes();
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    std::vector<uint8_t> copy = bytes;
    copy[byte] ^= 0x40;
    BufferReader reader(copy);
    (void)InferencePlan::DeserializeDataProviderView(&reader);
  }
}

// --------------------------------------------------- dispatch and stubs

TEST_F(NetTest, FramedProtocolMatchesPlainReference) {
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 21);
  RemoteModelProvider mp(ChannelTo(local_mp), *plan_);
  DataProvider dp(*plan_, *keys_, 23);

  const DoubleTensor input = MakeInput(31);
  auto output = RunProtocolInference(mp, dp, /*request_id=*/1, input);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  auto expected = RunScaledPlainInference(**plan_, input);
  ASSERT_TRUE(expected.ok());
  for (int64_t j = 0; j < expected->NumElements(); ++j) {
    EXPECT_DOUBLE_EQ(output.value()[j], expected.value()[j]);
  }
  // The completion release crossed the wire too.
  EXPECT_EQ(local_mp->PendingRequestsForTesting(), 0u);
}

TEST_F(NetTest, EngineRunsOverFramedChannel) {
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 41);
  auto mp = std::make_shared<RemoteModelProvider>(ChannelTo(local_mp),
                                                  *plan_);
  auto dp = std::make_shared<DataProvider>(*plan_, *keys_, 43);

  EngineConfig config;
  config.stage_threads = {1, 1, 1, 1, 1};
  PpStreamEngine engine(mp, dp, config);
  ASSERT_TRUE(engine.Start().ok());

  std::vector<DoubleTensor> inputs;
  for (uint64_t i = 0; i < 4; ++i) {
    inputs.push_back(MakeInput(100 + i));
    ASSERT_TRUE(engine.Submit(i, inputs.back()).ok());
  }
  for (int i = 0; i < 4; ++i) {
    auto result = engine.NextResult();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto expected =
        RunScaledPlainInference(**plan_, inputs[result->request_id]);
    ASSERT_TRUE(expected.ok());
    for (int64_t j = 0; j < expected->NumElements(); ++j) {
      EXPECT_DOUBLE_EQ(result->output[j], expected.value()[j]);
    }
  }
  engine.Shutdown();
}

TEST_F(NetTest, RemoteDataProviderMatchesLocal) {
  // Reverse deployment: the model-provider side drives a remote DP.
  auto local_dp = std::make_shared<DataProvider>(*plan_, *keys_, 53);
  auto channel = std::make_shared<InProcessFrameChannel>(
      [local_dp](const WireFrame& request) {
        return DispatchDataProviderFrame(*local_dp, request);
      });
  RemoteDataProvider dp(channel, keys_->public_key);
  ModelProvider mp(*plan_, keys_->public_key, 51);

  const DoubleTensor input = MakeInput(61);
  auto output = RunProtocolInference(mp, dp, /*request_id=*/1, input);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  auto expected = RunScaledPlainInference(**plan_, input);
  ASSERT_TRUE(expected.ok());
  for (int64_t j = 0; j < expected->NumElements(); ++j) {
    EXPECT_DOUBLE_EQ(output.value()[j], expected.value()[j]);
  }

  // Leakage views would pull plaintext across the wire; refused.
  std::vector<double> view;
  auto ct = dp.EncryptInput(input);
  ASSERT_TRUE(ct.ok());
  auto stage0 = mp.ProcessRound(2, 0, ct.value());
  ASSERT_TRUE(stage0.ok());
  EXPECT_EQ(dp.ProcessIntermediate(1, stage0.value(), &view, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(mp.ReleaseRequestState(2).ok());
}

TEST_F(NetTest, ModelProviderDispatchRejectsPlaintextMethods) {
  // The privacy separation, enforced at the dispatch layer: a model
  // provider refuses every method whose payload is a plaintext tensor.
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 71);
  const DoubleTensor input = MakeInput(73);
  const WireFrame request = MakeRequestFrame(
      WireMethod::kDpEncryptInput, 1, 0, SerializeDoubleTensor(input));
  const WireFrame response = DispatchModelProviderFrame(*local_mp, request);
  EXPECT_EQ(FrameStatus(response).code(), StatusCode::kProtocolError);
}

TEST_F(NetTest, DispatchSurvivesCorruptedPayloads) {
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 81);
  DataProvider dp(*plan_, *keys_, 83);
  auto ct = dp.EncryptInput(MakeInput(85));
  ASSERT_TRUE(ct.ok());

  BufferWriter writer;
  WriteCiphertexts(&writer, ct.value());
  const auto clean = writer.TakeBytes();

  FaultInjector injector(/*seed=*/87);
  FaultRule rule;
  rule.site_pattern = "net.recv";
  rule.kind = FaultKind::kCorruption;
  rule.every_nth = 1;
  rule.corrupt_bytes = 2;
  injector.AddRule(rule);

  for (int round = 0; round < 32; ++round) {
    std::vector<uint8_t> payload = clean;
    ASSERT_TRUE(injector.Corrupt("net.recv", payload));
    const WireFrame request = MakeRequestFrame(
        WireMethod::kMpProcessRound, 1000 + round, 0, std::move(payload));
    // Must produce a response frame (success or error) — never crash.
    const WireFrame response = DispatchModelProviderFrame(*local_mp, request);
    EXPECT_TRUE(response.is_response);
    (void)local_mp->ReleaseRequestState(1000 + round);
  }
}

TEST_F(NetTest, ChannelFaultInjectionSurfacesAsStatus) {
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 91);
  auto channel = ChannelTo(local_mp);

  auto injector = std::make_shared<FaultInjector>(93);
  FaultRule rule;
  rule.site_pattern = "net.send";
  rule.kind = FaultKind::kError;
  rule.error_code = StatusCode::kIoError;
  rule.every_nth = 1;
  injector->AddRule(rule);
  channel->SetFaultInjector(injector);

  RemoteModelProvider mp(channel, *plan_);
  DataProvider dp(*plan_, *keys_, 95);
  auto ct = dp.EncryptInput(MakeInput(97));
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(mp.ProcessRound(1, 0, ct.value()).status().code(),
            StatusCode::kIoError);

  // Corruption of the response bytes must fail decode, not crash.
  injector->Clear();
  rule.site_pattern = "net.recv";
  rule.kind = FaultKind::kCorruption;
  rule.corrupt_bytes = 4;
  injector->AddRule(rule);
  for (int i = 0; i < 16; ++i) {
    (void)mp.ProcessRound(2 + i, 0, ct.value());
    (void)mp.ReleaseRequestState(2 + i);
  }
  EXPECT_GT(injector->stats().corruptions, 0u);
}

// ----------------------------------------------------------- TCP loopback

/// Little-endian byte pattern of each tensor element, for scanning frame
/// payloads for plaintext leaks.
std::vector<std::vector<uint8_t>> DoublePatterns(const DoubleTensor& t) {
  std::vector<std::vector<uint8_t>> patterns;
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    std::vector<uint8_t> p(sizeof(double));
    const double v = t[i];
    std::memcpy(p.data(), &v, sizeof(double));
    patterns.push_back(std::move(p));
  }
  return patterns;
}

bool Contains(const std::vector<uint8_t>& haystack,
              const std::vector<uint8_t>& needle) {
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

TEST_F(NetTest, TcpLoopbackInferenceIsBitExactAndLeakFree) {
  ModelProviderServerOptions server_options;
  server_options.worker_threads = 2;
  ModelProviderTcpServer server(*plan_, server_options);
  ASSERT_TRUE(server.Listen(0).ok());

  std::thread server_thread(
      [&server] { ASSERT_TRUE(server.ServeOne(10.0).ok()); });

  auto transport = TcpTransport::Connect("127.0.0.1", server.port(),
                                         keys_->public_key);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();

  // The handshake delivered a weight-free view, not the model.
  auto view = transport.value()->view_plan();
  EXPECT_TRUE(view->is_data_provider_view);
  EXPECT_EQ(view->NumRounds(), (*plan_)->NumRounds());

  // Capture everything this side puts on (and gets off) the wire.
  std::vector<WireFrame> outbound;
  transport.value()->channel().SetFrameObserver(
      [&outbound](const WireFrame& frame, bool out) {
        if (out) outbound.push_back(frame);
      });

  DataProvider dp(view, *keys_, 103);
  ModelProviderApi& mp = *transport.value()->model_provider();

  std::vector<DoubleTensor> inputs = {MakeInput(111), MakeInput(112)};
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto output = RunProtocolInference(mp, dp, i + 1, inputs[i]);
    ASSERT_TRUE(output.ok()) << output.status().ToString();
    auto expected = RunScaledPlainInference(**plan_, inputs[i]);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(output->NumElements(), expected->NumElements());
    for (int64_t j = 0; j < expected->NumElements(); ++j) {
      EXPECT_DOUBLE_EQ(output.value()[j], expected.value()[j])
          << "request " << i + 1 << " element " << j;
    }

    // Frame inspection: every model-provider-bound frame is either the
    // handshake (public key only) or an Mp method whose payload is
    // ciphertexts; no frame contains the plaintext input or output bytes.
    ASSERT_FALSE(outbound.empty());
    const auto in_patterns = DoublePatterns(inputs[i]);
    const auto out_patterns = DoublePatterns(expected.value());
    for (const WireFrame& frame : outbound) {
      EXPECT_FALSE(frame.is_response);
      EXPECT_TRUE(frame.method == WireMethod::kHandshake ||
                  (frame.method >= WireMethod::kMpProcessRound &&
                   frame.method <= WireMethod::kMpReleaseRequestState))
          << WireMethodToString(frame.method);
      for (const auto& p : in_patterns) {
        EXPECT_FALSE(Contains(frame.payload, p)) << "plaintext input leaked";
      }
      for (const auto& p : out_patterns) {
        EXPECT_FALSE(Contains(frame.payload, p)) << "plaintext output leaked";
      }
    }
  }

  const TransportStats stats = transport.value()->stats();
  EXPECT_GT(stats.frames_sent, 0u);
  EXPECT_EQ(stats.frames_sent, stats.frames_received);

  transport.value()->Close();
  server_thread.join();
  EXPECT_EQ(server.connections_served(), 1u);
}

TEST_F(NetTest, TcpConnectToClosedPortFails) {
  // Bind then immediately close to obtain a port that refuses connections.
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  listener->Close();

  auto transport = TcpTransport::Connect("127.0.0.1", port,
                                         keys_->public_key);
  EXPECT_FALSE(transport.ok());
}

TEST_F(NetTest, TcpAcceptTimeoutIsDeadlineExceeded) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto socket = listener->Accept(/*timeout_seconds=*/0.05);
  EXPECT_EQ(socket.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(NetTest, TcpRecvTimeoutIsDeadlineExceeded) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto client = TcpSocket::Connect("127.0.0.1", listener->port(), 1.0);
  ASSERT_TRUE(client.ok());
  auto accepted = listener->Accept(1.0);
  ASSERT_TRUE(accepted.ok());
  // Nobody sends: the read must give up with DeadlineExceeded.
  uint8_t byte = 0;
  EXPECT_EQ(client->RecvAll(&byte, 1, /*timeout_seconds=*/0.05).code(),
            StatusCode::kDeadlineExceeded);
}

TEST_F(NetTest, ServerRejectsGarbageHandshake) {
  ModelProviderTcpServer server(*plan_);
  ASSERT_TRUE(server.Listen(0).ok());
  std::thread server_thread([&server] {
    // The connection errors out server-side; that must not crash Serve.
    EXPECT_FALSE(server.ServeOne(10.0).ok());
  });

  auto socket = TcpSocket::Connect("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(socket.ok());
  // A frame that is valid at the wire level but not a handshake.
  const auto bytes =
      EncodeFrame(MakeRequestFrame(WireMethod::kMpProcessRound, 1, 0, {}));
  ASSERT_TRUE(socket->SendAll(bytes.data(), bytes.size(), 5.0).ok());
  auto reply = RecvFrame(*socket, 5.0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(FrameStatus(*reply).code(), StatusCode::kProtocolError);
  socket->Close();
  server_thread.join();
}

}  // namespace
}  // namespace ppstream
