// Tests for the transport boundary: wire-format encode/decode hardening,
// framed dispatch against real providers, remote stubs, the TCP loopback
// deployment (bit-exact with the scaled plain reference), and the privacy
// separation (plaintext never reaches the model provider's side of the
// wire; weights never reach the data provider).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/protocol.h"
#include "net/server.h"
#include "net/session.h"
#include "net/transport.h"
#include "net/wire.h"
#include "nn/layers.h"
#include "stream/engine.h"
#include "stream/message.h"
#include "util/rng.h"

namespace ppstream {
namespace {

// ----------------------------------------------------------------- wire

WireFrame SampleRequest() {
  return MakeRequestFrame(WireMethod::kMpProcessRound, /*request_id=*/42,
                          /*round=*/3, {1, 2, 3, 4, 5});
}

TEST(WireTest, RequestFrameRoundTrip) {
  const WireFrame frame = SampleRequest();
  const auto bytes = EncodeFrame(frame);
  EXPECT_EQ(bytes.size(), frame.WireSize());
  auto back = DecodeFrame(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->version, kWireVersion);
  EXPECT_EQ(back->method, WireMethod::kMpProcessRound);
  EXPECT_FALSE(back->is_response);
  EXPECT_EQ(back->status, StatusCode::kOk);
  EXPECT_EQ(back->request_id, 42u);
  EXPECT_EQ(back->round, 3u);
  EXPECT_EQ(back->payload, frame.payload);
}

TEST(WireTest, ErrorFrameCarriesStatus) {
  const WireFrame request = SampleRequest();
  const WireFrame error =
      MakeErrorFrame(request, Status::DeadlineExceeded("too slow"));
  auto back = DecodeFrame(EncodeFrame(error));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->is_response);
  const Status status = FrameStatus(*back);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(status.message(), "too slow");
}

TEST(WireTest, RejectsForeignAndMalformedHeaders) {
  const auto bytes = EncodeFrame(SampleRequest());

  auto corrupted = [&](size_t offset, uint8_t value) {
    std::vector<uint8_t> copy = bytes;
    copy[offset] = value;
    return DecodeFrame(copy);
  };

  // magic (offset 0), version (offset 4), method (offset 6), flags
  // (offset 8), status (offset 9) — each validated by name.
  EXPECT_EQ(corrupted(0, 'X').status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(corrupted(4, 0xEE).status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(corrupted(6, 0xEE).status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(corrupted(8, 0xF0).status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(corrupted(9, 0xEE).status().code(), StatusCode::kProtocolError);

  // A request frame must not carry an error status.
  EXPECT_EQ(corrupted(9, 1).status().code(), StatusCode::kProtocolError);

  // Trailing garbage after the announced payload.
  std::vector<uint8_t> extended = bytes;
  extended.push_back(0);
  EXPECT_FALSE(DecodeFrame(extended).ok());
}

TEST(WireTest, TruncationAtEveryLengthFails) {
  const auto bytes = EncodeFrame(SampleRequest());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DecodeFrame(prefix).ok()) << "prefix " << len;
  }
}

TEST(WireTest, BitFlipsNeverCrash) {
  const auto bytes = EncodeFrame(SampleRequest());
  // Flip every bit of the encoded frame one at a time; decode must return
  // a Status each time (possibly OK for opaque payload bits) — never UB.
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> copy = bytes;
      copy[byte] ^= static_cast<uint8_t>(1u << bit);
      (void)DecodeFrame(copy);
    }
  }
}

// ------------------------------------------------- wire revision 3

WireFrame SampleSessionedRequest() {
  WireFrame frame = SampleRequest();
  frame.session_id = 0x1122334455667788ULL;
  frame.sequence = 9;
  frame.deadline_micros = 250'000;
  return frame;
}

TEST(WireTest, SessionedFrameRoundTripV3) {
  const WireFrame frame = SampleSessionedRequest();
  const auto bytes = EncodeFrame(frame);
  EXPECT_EQ(bytes.size(),
            FrameHeaderBytesFor(kWireVersionSession) + frame.payload.size());
  auto back = DecodeFrame(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->version, kWireVersionSession);
  EXPECT_EQ(back->session_id, frame.session_id);
  EXPECT_EQ(back->sequence, frame.sequence);
  EXPECT_EQ(back->deadline_micros, frame.deadline_micros);
  EXPECT_EQ(back->payload, frame.payload);
  // The trace block is present but zero for an untraced sessioned frame.
  EXPECT_EQ(back->trace_id, 0u);
  EXPECT_EQ(back->parent_span_id, 0u);
}

TEST(WireTest, SessionBlockIsOptInPerFrame) {
  // Session-off frames stay bit-identical to the pre-session encoding:
  // stamping all-zero session state must not change a single byte.
  const WireFrame untraced = SampleRequest();
  EXPECT_EQ(EncodeFrame(untraced), EncodeFrameStamped(untraced, {}));
  EXPECT_EQ(EncodeFrame(untraced).size(),
            kFrameHeaderBytes + untraced.payload.size());

  WireFrame traced = SampleRequest();
  traced.trace_id = 5;
  traced.parent_span_id = 6;
  EXPECT_EQ(traced.EncodedVersion(), kWireVersionTraced);
  EXPECT_EQ(EncodeFrame(traced).size(),
            FrameHeaderBytesFor(kWireVersionTraced) + traced.payload.size());

  // A session-requesting handshake encodes at revision 3 even with all
  // numeric session fields still zero.
  WireFrame hello = MakeRequestFrame(WireMethod::kHandshake, 0, 0, {});
  hello.session_request = true;
  auto back = DecodeFrame(EncodeFrame(hello));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->version, kWireVersionSession);
  EXPECT_TRUE(back->session_request);
}

TEST(WireTest, SessionedFrameTruncationAtEveryLengthFails) {
  const auto bytes = EncodeFrame(SampleSessionedRequest());
  for (size_t len = 0; len < bytes.size(); ++len) {
    std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_FALSE(DecodeFrame(prefix).ok()) << "prefix " << len;
  }
}

TEST(WireTest, SessionedFrameBitFlipsNeverCrash) {
  const auto bytes = EncodeFrame(SampleSessionedRequest());
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> copy = bytes;
      copy[byte] ^= static_cast<uint8_t>(1u << bit);
      (void)DecodeFrame(copy);
    }
  }
}

TEST(WireTest, SessionRequestFlagOnlyValidOnHandshakeRequests) {
  // On a non-handshake request the flag is a protocol violation.
  WireFrame request = SampleSessionedRequest();
  request.session_request = true;
  EXPECT_EQ(DecodeFrame(EncodeFrame(request)).status().code(),
            StatusCode::kProtocolError);

  // On a response it is too (the server issues ids in the body of the
  // handshake response, never via the flag).
  WireFrame response =
      MakeResponseFrame(MakeRequestFrame(WireMethod::kHandshake, 0, 0, {}),
                        {});
  response.session_request = true;
  EXPECT_EQ(DecodeFrame(EncodeFrame(response)).status().code(),
            StatusCode::kProtocolError);
}

TEST(WireTest, ResponseMustNotCarryDeadline) {
  // Deadlines propagate client → server only; a response claiming one is
  // malformed.
  WireFrame response = MakeResponseFrame(SampleSessionedRequest(), {1, 2});
  response.deadline_micros = 77;
  EXPECT_EQ(DecodeFrame(EncodeFrame(response)).status().code(),
            StatusCode::kProtocolError);
}

TEST(WireTest, ResponsesEchoSessionIdAndSequence) {
  const WireFrame request = SampleSessionedRequest();
  const WireFrame response = MakeResponseFrame(request, {9});
  EXPECT_EQ(response.session_id, request.session_id);
  EXPECT_EQ(response.sequence, request.sequence);
  EXPECT_EQ(response.deadline_micros, 0u);
  const WireFrame error = MakeErrorFrame(request, Status::Internal("x"));
  EXPECT_EQ(error.session_id, request.session_id);
  EXPECT_EQ(error.sequence, request.sequence);
}

TEST(WireTest, HostilePayloadLengthIsBoundedBeforeAllocation) {
  WireFrame frame = SampleRequest();
  auto bytes = EncodeFrame(frame);
  // payload_len lives at offset 26; write an absurd value.
  const uint64_t huge = ~0ULL;
  std::memcpy(bytes.data() + 26, &huge, sizeof(huge));
  uint64_t payload_len = 0;
  auto header =
      DecodeFrameHeader(bytes.data(), kFrameHeaderBytes, &payload_len);
  EXPECT_EQ(header.status().code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------- fixture (tiny model)

class NetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(7);
    auto pair = Paillier::GenerateKeyPair(256, rng);
    ASSERT_TRUE(pair.ok());
    keys_ = new PaillierKeyPair(std::move(pair).value());

    Rng mrng(8);
    Model model(Shape{4}, "net");
    PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 6, mrng)));
    PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
    PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 3, mrng)));
    PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
    auto plan = CompilePlan(model, 1000);
    ASSERT_TRUE(plan.ok());
    plan_ = new std::shared_ptr<const InferencePlan>(
        std::make_shared<const InferencePlan>(std::move(plan).value()));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete plan_;
  }

  static DoubleTensor MakeInput(uint64_t seed) {
    Rng rng(seed);
    DoubleTensor x{Shape{4}};
    for (int64_t j = 0; j < 4; ++j) x[j] = rng.NextUniform(-2, 2);
    return x;
  }

  /// A channel whose far end is a real ModelProvider behind the server
  /// dispatcher — the full wire path without sockets.
  static std::shared_ptr<InProcessFrameChannel> ChannelTo(
      std::shared_ptr<ModelProvider> mp) {
    return std::make_shared<InProcessFrameChannel>(
        [mp](const WireFrame& request) {
          return DispatchModelProviderFrame(*mp, request);
        });
  }

  static PaillierKeyPair* keys_;
  static std::shared_ptr<const InferencePlan>* plan_;
};

PaillierKeyPair* NetTest::keys_ = nullptr;
std::shared_ptr<const InferencePlan>* NetTest::plan_ = nullptr;

// ----------------------------------------------- serialization hardening

TEST_F(NetTest, DataProviderViewTruncationFails) {
  BufferWriter writer;
  (*plan_)->SerializeDataProviderView(&writer);
  const auto bytes = writer.TakeBytes();
  for (size_t len = 0; len < bytes.size(); ++len) {
    BufferReader reader(bytes.data(), len);
    EXPECT_FALSE(InferencePlan::DeserializeDataProviderView(&reader).ok())
        << "prefix " << len;
  }
}

TEST_F(NetTest, DataProviderViewBitFlipsNeverCrash) {
  BufferWriter writer;
  (*plan_)->SerializeDataProviderView(&writer);
  const auto bytes = writer.TakeBytes();
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    std::vector<uint8_t> copy = bytes;
    copy[byte] ^= 0x40;
    BufferReader reader(copy);
    (void)InferencePlan::DeserializeDataProviderView(&reader);
  }
}

// --------------------------------------------------- dispatch and stubs

TEST_F(NetTest, FramedProtocolMatchesPlainReference) {
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 21);
  RemoteModelProvider mp(ChannelTo(local_mp), *plan_);
  DataProvider dp(*plan_, *keys_, 23);

  const DoubleTensor input = MakeInput(31);
  auto output = RunProtocolInference(mp, dp, /*request_id=*/1, input);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  auto expected = RunScaledPlainInference(**plan_, input);
  ASSERT_TRUE(expected.ok());
  for (int64_t j = 0; j < expected->NumElements(); ++j) {
    EXPECT_DOUBLE_EQ(output.value()[j], expected.value()[j]);
  }
  // The completion release crossed the wire too.
  EXPECT_EQ(local_mp->PendingRequestsForTesting(), 0u);
}

TEST_F(NetTest, EngineRunsOverFramedChannel) {
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 41);
  auto mp = std::make_shared<RemoteModelProvider>(ChannelTo(local_mp),
                                                  *plan_);
  auto dp = std::make_shared<DataProvider>(*plan_, *keys_, 43);

  EngineConfig config;
  config.stage_threads = {1, 1, 1, 1, 1};
  PpStreamEngine engine(mp, dp, config);
  ASSERT_TRUE(engine.Start().ok());

  std::vector<DoubleTensor> inputs;
  for (uint64_t i = 0; i < 4; ++i) {
    inputs.push_back(MakeInput(100 + i));
    ASSERT_TRUE(engine.Submit(i, inputs.back()).ok());
  }
  for (int i = 0; i < 4; ++i) {
    auto result = engine.NextResult();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    auto expected =
        RunScaledPlainInference(**plan_, inputs[result->request_id]);
    ASSERT_TRUE(expected.ok());
    for (int64_t j = 0; j < expected->NumElements(); ++j) {
      EXPECT_DOUBLE_EQ(result->output[j], expected.value()[j]);
    }
  }
  engine.Shutdown();
}

TEST_F(NetTest, RemoteDataProviderMatchesLocal) {
  // Reverse deployment: the model-provider side drives a remote DP.
  auto local_dp = std::make_shared<DataProvider>(*plan_, *keys_, 53);
  auto channel = std::make_shared<InProcessFrameChannel>(
      [local_dp](const WireFrame& request) {
        return DispatchDataProviderFrame(*local_dp, request);
      });
  RemoteDataProvider dp(channel, keys_->public_key);
  ModelProvider mp(*plan_, keys_->public_key, 51);

  const DoubleTensor input = MakeInput(61);
  auto output = RunProtocolInference(mp, dp, /*request_id=*/1, input);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  auto expected = RunScaledPlainInference(**plan_, input);
  ASSERT_TRUE(expected.ok());
  for (int64_t j = 0; j < expected->NumElements(); ++j) {
    EXPECT_DOUBLE_EQ(output.value()[j], expected.value()[j]);
  }

  // Leakage views would pull plaintext across the wire; refused.
  std::vector<double> view;
  auto ct = dp.EncryptInput(input);
  ASSERT_TRUE(ct.ok());
  auto stage0 = mp.ProcessRound(2, 0, ct.value());
  ASSERT_TRUE(stage0.ok());
  EXPECT_EQ(dp.ProcessIntermediate(1, stage0.value(), &view, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(mp.ReleaseRequestState(2).ok());
}

TEST_F(NetTest, ModelProviderDispatchRejectsPlaintextMethods) {
  // The privacy separation, enforced at the dispatch layer: a model
  // provider refuses every method whose payload is a plaintext tensor.
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 71);
  const DoubleTensor input = MakeInput(73);
  const WireFrame request = MakeRequestFrame(
      WireMethod::kDpEncryptInput, 1, 0, SerializeDoubleTensor(input));
  const WireFrame response = DispatchModelProviderFrame(*local_mp, request);
  EXPECT_EQ(FrameStatus(response).code(), StatusCode::kProtocolError);
}

TEST_F(NetTest, DispatchSurvivesCorruptedPayloads) {
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 81);
  DataProvider dp(*plan_, *keys_, 83);
  auto ct = dp.EncryptInput(MakeInput(85));
  ASSERT_TRUE(ct.ok());

  BufferWriter writer;
  WriteCiphertexts(&writer, ct.value());
  const auto clean = writer.TakeBytes();

  FaultInjector injector(/*seed=*/87);
  FaultRule rule;
  rule.site_pattern = "net.recv";
  rule.kind = FaultKind::kCorruption;
  rule.every_nth = 1;
  rule.corrupt_bytes = 2;
  injector.AddRule(rule);

  for (int round = 0; round < 32; ++round) {
    std::vector<uint8_t> payload = clean;
    ASSERT_TRUE(injector.Corrupt("net.recv", payload));
    const WireFrame request = MakeRequestFrame(
        WireMethod::kMpProcessRound, 1000 + round, 0, std::move(payload));
    // Must produce a response frame (success or error) — never crash.
    const WireFrame response = DispatchModelProviderFrame(*local_mp, request);
    EXPECT_TRUE(response.is_response);
    (void)local_mp->ReleaseRequestState(1000 + round);
  }
}

TEST_F(NetTest, ChannelFaultInjectionSurfacesAsStatus) {
  auto local_mp =
      std::make_shared<ModelProvider>(*plan_, keys_->public_key, 91);
  auto channel = ChannelTo(local_mp);

  auto injector = std::make_shared<FaultInjector>(93);
  FaultRule rule;
  rule.site_pattern = "net.send";
  rule.kind = FaultKind::kError;
  rule.error_code = StatusCode::kIoError;
  rule.every_nth = 1;
  injector->AddRule(rule);
  channel->SetFaultInjector(injector);

  RemoteModelProvider mp(channel, *plan_);
  DataProvider dp(*plan_, *keys_, 95);
  auto ct = dp.EncryptInput(MakeInput(97));
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(mp.ProcessRound(1, 0, ct.value()).status().code(),
            StatusCode::kIoError);

  // Corruption of the response bytes must fail decode, not crash.
  injector->Clear();
  rule.site_pattern = "net.recv";
  rule.kind = FaultKind::kCorruption;
  rule.corrupt_bytes = 4;
  injector->AddRule(rule);
  for (int i = 0; i < 16; ++i) {
    (void)mp.ProcessRound(2 + i, 0, ct.value());
    (void)mp.ReleaseRequestState(2 + i);
  }
  EXPECT_GT(injector->stats().corruptions, 0u);
}

// ----------------------------------------------------------- TCP loopback

/// Little-endian byte pattern of each tensor element, for scanning frame
/// payloads for plaintext leaks.
std::vector<std::vector<uint8_t>> DoublePatterns(const DoubleTensor& t) {
  std::vector<std::vector<uint8_t>> patterns;
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    std::vector<uint8_t> p(sizeof(double));
    const double v = t[i];
    std::memcpy(p.data(), &v, sizeof(double));
    patterns.push_back(std::move(p));
  }
  return patterns;
}

bool Contains(const std::vector<uint8_t>& haystack,
              const std::vector<uint8_t>& needle) {
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

TEST_F(NetTest, TcpLoopbackInferenceIsBitExactAndLeakFree) {
  ModelProviderServerOptions server_options;
  server_options.worker_threads = 2;
  ModelProviderTcpServer server(*plan_, server_options);
  ASSERT_TRUE(server.Listen(0).ok());

  std::thread server_thread(
      [&server] { ASSERT_TRUE(server.ServeOne(10.0).ok()); });

  auto transport = TcpTransport::Connect("127.0.0.1", server.port(),
                                         keys_->public_key);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();

  // The handshake delivered a weight-free view, not the model.
  auto view = transport.value()->view_plan();
  EXPECT_TRUE(view->is_data_provider_view);
  EXPECT_EQ(view->NumRounds(), (*plan_)->NumRounds());

  // Capture everything this side puts on (and gets off) the wire.
  std::vector<WireFrame> outbound;
  transport.value()->channel().SetFrameObserver(
      [&outbound](const WireFrame& frame, bool out) {
        if (out) outbound.push_back(frame);
      });

  DataProvider dp(view, *keys_, 103);
  ModelProviderApi& mp = *transport.value()->model_provider();

  std::vector<DoubleTensor> inputs = {MakeInput(111), MakeInput(112)};
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto output = RunProtocolInference(mp, dp, i + 1, inputs[i]);
    ASSERT_TRUE(output.ok()) << output.status().ToString();
    auto expected = RunScaledPlainInference(**plan_, inputs[i]);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(output->NumElements(), expected->NumElements());
    for (int64_t j = 0; j < expected->NumElements(); ++j) {
      EXPECT_DOUBLE_EQ(output.value()[j], expected.value()[j])
          << "request " << i + 1 << " element " << j;
    }

    // Frame inspection: every model-provider-bound frame is either the
    // handshake (public key only) or an Mp method whose payload is
    // ciphertexts; no frame contains the plaintext input or output bytes.
    ASSERT_FALSE(outbound.empty());
    const auto in_patterns = DoublePatterns(inputs[i]);
    const auto out_patterns = DoublePatterns(expected.value());
    for (const WireFrame& frame : outbound) {
      EXPECT_FALSE(frame.is_response);
      EXPECT_TRUE(frame.method == WireMethod::kHandshake ||
                  (frame.method >= WireMethod::kMpProcessRound &&
                   frame.method <= WireMethod::kMpReleaseRequestState))
          << WireMethodToString(frame.method);
      for (const auto& p : in_patterns) {
        EXPECT_FALSE(Contains(frame.payload, p)) << "plaintext input leaked";
      }
      for (const auto& p : out_patterns) {
        EXPECT_FALSE(Contains(frame.payload, p)) << "plaintext output leaked";
      }
    }
  }

  const TransportStats stats = transport.value()->stats();
  EXPECT_GT(stats.frames_sent, 0u);
  EXPECT_EQ(stats.frames_sent, stats.frames_received);

  transport.value()->Close();
  server_thread.join();
  EXPECT_EQ(server.connections_served(), 1u);
}

TEST_F(NetTest, TcpConnectToClosedPortFails) {
  // Bind then immediately close to obtain a port that refuses connections.
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  listener->Close();

  auto transport = TcpTransport::Connect("127.0.0.1", port,
                                         keys_->public_key);
  EXPECT_FALSE(transport.ok());
}

TEST_F(NetTest, TcpAcceptTimeoutIsDeadlineExceeded) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto socket = listener->Accept(/*timeout_seconds=*/0.05);
  EXPECT_EQ(socket.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(NetTest, TcpRecvTimeoutIsDeadlineExceeded) {
  auto listener = TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto client = TcpSocket::Connect("127.0.0.1", listener->port(), 1.0);
  ASSERT_TRUE(client.ok());
  auto accepted = listener->Accept(1.0);
  ASSERT_TRUE(accepted.ok());
  // Nobody sends: the read must give up with DeadlineExceeded.
  uint8_t byte = 0;
  EXPECT_EQ(client->RecvAll(&byte, 1, /*timeout_seconds=*/0.05).code(),
            StatusCode::kDeadlineExceeded);
}

TEST_F(NetTest, ServerRejectsGarbageHandshake) {
  ModelProviderTcpServer server(*plan_);
  ASSERT_TRUE(server.Listen(0).ok());
  std::thread server_thread([&server] {
    // The connection errors out server-side; that must not crash Serve.
    EXPECT_FALSE(server.ServeOne(10.0).ok());
  });

  auto socket = TcpSocket::Connect("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(socket.ok());
  // A frame that is valid at the wire level but not a handshake.
  const auto bytes =
      EncodeFrame(MakeRequestFrame(WireMethod::kMpProcessRound, 1, 0, {}));
  ASSERT_TRUE(socket->SendAll(bytes.data(), bytes.size(), 5.0).ok());
  auto reply = RecvFrame(*socket, 5.0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(FrameStatus(*reply).code(), StatusCode::kProtocolError);
  socket->Close();
  server_thread.join();
}

// --------------------------------------------------------- session layer

TEST(SessionTest, RequestDeadlinePassedSemantics) {
  // 0 means "no deadline" — it never expires.
  EXPECT_FALSE(RequestDeadlinePassed(0, 100.0, 500.0));
  // 1s budget, 0.5s elapsed since the frame arrived: still live.
  EXPECT_FALSE(RequestDeadlinePassed(1'000'000, 100.0, 100.5));
  // 1s budget, 1.5s elapsed: shed.
  EXPECT_TRUE(RequestDeadlinePassed(1'000'000, 100.0, 101.5));
}

TEST(DeadlineScopeTest, NestsToTightestAndClampsExpired) {
  EXPECT_FALSE(DeadlineScope::active());
  EXPECT_EQ(DeadlineScope::RemainingMicros(), 0u);  // no deadline on wire
  {
    DeadlineScope outer(10.0);
    EXPECT_TRUE(DeadlineScope::active());
    EXPECT_GT(DeadlineScope::RemainingMicros(), 1'000'000u);
    {
      DeadlineScope inner(0.5);  // tighter wins
      EXPECT_LE(DeadlineScope::RemainingMicros(), 500'000u);
      DeadlineScope inherit(0);  // 0 inherits the enclosing deadline
      EXPECT_LE(DeadlineScope::RemainingMicros(), 500'000u);
    }
    // Popping the inner scopes restores the outer deadline.
    EXPECT_GT(DeadlineScope::RemainingMicros(), 1'000'000u);
  }
  EXPECT_FALSE(DeadlineScope::active());
  {
    DeadlineScope tiny(1e-9);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(DeadlineScope::Expired());
    // Expired-but-active must still read as "has a deadline" on the wire,
    // never as "no deadline".
    EXPECT_EQ(DeadlineScope::RemainingMicros(), 1u);
  }
}

TEST_F(NetTest, SessionRegistryReplayAndStaleSequence) {
  SessionLayerOptions bounds;
  bounds.reply_cache_entries = 2;
  SessionRegistry registry(bounds);
  auto session = registry.Create(
      std::make_unique<ModelProvider>(*plan_, keys_->public_key, 7),
      {1, 2, 3});
  ASSERT_NE(session, nullptr);
  EXPECT_NE(session->id(), 0u);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(session->view_payload(), (std::vector<uint8_t>{1, 2, 3}));

  session->StoreReply(1, {10}, bounds);
  session->StoreReply(2, {20}, bounds);
  ASSERT_NE(session->CachedReply(2), nullptr);
  EXPECT_EQ(*session->CachedReply(2), (std::vector<uint8_t>{20}));
  EXPECT_FALSE(session->IsStaleSequence(3));  // never served: not stale
  session->StoreReply(3, {30}, bounds);       // evicts sequence 1
  EXPECT_EQ(session->CachedReply(1), nullptr);
  EXPECT_TRUE(session->IsStaleSequence(1));  // served, reply evicted
  EXPECT_EQ(session->last_sequence(), 3u);

  session->Detach();  // the creating connection hangs up
  EXPECT_TRUE(registry.Resume(session->id()).ok());
  EXPECT_EQ(registry.Resume(session->id() ^ 1).status().code(),
            StatusCode::kNotFound);
  registry.Remove(session->id());
  EXPECT_EQ(registry.size(), 0u);
}

TEST_F(NetTest, SessionRegistryResumeIsExclusiveWhileAttached) {
  SessionRegistry registry;
  auto session = registry.Create(
      std::make_unique<ModelProvider>(*plan_, keys_->public_key, 9), {});
  // Created sessions come attached to the creating connection; a resume
  // from a second connection must be refused (never handing the same
  // provider/reply cache to two threads) and must kick the holder.
  EXPECT_TRUE(session->attached());
  EXPECT_FALSE(session->kicked());
  EXPECT_EQ(registry.Resume(session->id()).status().code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(session->kicked());
  // Once the holder detaches, the retry succeeds and re-attaches with a
  // clean kick flag.
  session->Detach();
  ASSERT_TRUE(registry.Resume(session->id()).ok());
  EXPECT_TRUE(session->attached());
  EXPECT_FALSE(session->kicked());
}

TEST_F(NetTest, SessionRegistryEvictsLeastRecentlyResumed) {
  SessionLayerOptions bounds;
  bounds.max_sessions = 2;
  SessionRegistry registry(bounds);
  auto make_mp = [this](uint64_t seed) {
    return std::make_unique<ModelProvider>(*plan_, keys_->public_key, seed);
  };
  auto a = registry.Create(make_mp(1), {});
  auto b = registry.Create(make_mp(2), {});
  a->Detach();
  b->Detach();
  ASSERT_TRUE(registry.Resume(a->id()).ok());  // a is now most recent
  a->Detach();
  auto c = registry.Create(make_mp(3), {});    // evicts b, not a
  c->Detach();
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_TRUE(registry.Resume(a->id()).ok());
  a->Detach();
  EXPECT_TRUE(registry.Resume(c->id()).ok());
  EXPECT_EQ(registry.Resume(b->id()).status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------- TCP resilience

TEST_F(NetTest, ConcurrentResumeKicksHalfOpenConnection) {
  ModelProviderServerOptions options;
  options.max_concurrent_connections = 2;
  options.accept_poll_seconds = 0.05;
  ModelProviderTcpServer server(*plan_, options);
  ASSERT_TRUE(server.Listen(0).ok());
  std::thread server_thread([&server] { EXPECT_TRUE(server.Serve().ok()); });

  BufferWriter key;
  keys_->public_key.Serialize(&key);
  const std::vector<uint8_t> key_bytes = key.TakeBytes();

  // Connection A: sessioned handshake, then go silent — from the
  // server's point of view, a half-open connection still attached to
  // its session.
  auto a = TcpSocket::Connect("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(a.ok());
  WireFrame hello = MakeRequestFrame(WireMethod::kHandshake, 0, 0, key_bytes);
  hello.session_request = true;
  const auto hello_bytes = EncodeFrame(hello);
  ASSERT_TRUE(a->SendAll(hello_bytes.data(), hello_bytes.size(), 5.0).ok());
  auto a_resp = RecvFrame(*a, 5.0);
  ASSERT_TRUE(a_resp.ok()) << a_resp.status().ToString();
  ASSERT_TRUE(FrameStatus(*a_resp).ok());
  const uint64_t session_id = a_resp->session_id;
  ASSERT_NE(session_id, 0u);

  // Connection B resumes the same session while A is attached: the
  // registry must refuse (kUnavailable) rather than hand the same
  // provider to a second thread, and must kick A so a retry succeeds.
  Status resume_status = Status::IoError("never attempted");
  bool saw_busy = false;
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto b = TcpSocket::Connect("127.0.0.1", server.port(), 5.0);
    ASSERT_TRUE(b.ok());
    WireFrame resume =
        MakeRequestFrame(WireMethod::kHandshake, 0, 0, key_bytes);
    resume.session_id = session_id;
    const auto resume_bytes = EncodeFrame(resume);
    ASSERT_TRUE(
        b->SendAll(resume_bytes.data(), resume_bytes.size(), 5.0).ok());
    auto b_resp = RecvFrame(*b, 5.0);
    ASSERT_TRUE(b_resp.ok()) << b_resp.status().ToString();
    resume_status = FrameStatus(*b_resp);
    if (resume_status.ok()) break;
    ASSERT_EQ(resume_status.code(), StatusCode::kUnavailable)
        << resume_status.ToString();
    saw_busy = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(resume_status.ok()) << resume_status.ToString();
  EXPECT_TRUE(saw_busy);  // the attach gate refused at least once

  // The kicked connection was closed by the server, not left serving.
  uint8_t byte = 0;
  EXPECT_FALSE(a->RecvAll(&byte, 1, 2.0).ok());

  server.Shutdown();
  server_thread.join();
}

TEST_F(NetTest, TcpSessionResumeSurvivesSocketResets) {
  ModelProviderTcpServer server(*plan_);
  ASSERT_TRUE(server.Listen(0).ok());
  std::thread server_thread([&server] { EXPECT_TRUE(server.Serve().ok()); });

  auto transport = TcpTransport::Connect("127.0.0.1", server.port(),
                                         keys_->public_key);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  auto* channel =
      dynamic_cast<ResilientTcpChannel*>(&transport.value()->channel());
  ASSERT_NE(channel, nullptr);
  const uint64_t session_id = channel->session_id();
  EXPECT_NE(session_id, 0u);

  // Tear the connection down below every other frame: each reset forces
  // a redial + session resume mid-inference.
  auto injector = std::make_shared<FaultInjector>(171);
  FaultRule rule;
  rule.site_pattern = "net.sock.reset";
  rule.kind = FaultKind::kError;
  rule.error_code = StatusCode::kIoError;
  rule.every_nth = 2;
  injector->AddRule(rule);
  transport.value()->channel().SetFaultInjector(injector);

  std::vector<WireFrame> outbound;
  std::vector<WireFrame> inbound;
  transport.value()->channel().SetFrameObserver(
      [&](const WireFrame& frame, bool out) {
        (out ? outbound : inbound).push_back(frame);
      });

  DataProvider dp(transport.value()->view_plan(), *keys_, 173);
  ModelProviderApi& mp = *transport.value()->model_provider();

  for (uint64_t request = 1; request <= 2; ++request) {
    const DoubleTensor input = MakeInput(175 + request);
    auto output = RunProtocolInference(mp, dp, request, input);
    ASSERT_TRUE(output.ok()) << output.status().ToString();
    auto expected = RunScaledPlainInference(**plan_, input);
    ASSERT_TRUE(expected.ok());
    for (int64_t j = 0; j < expected->NumElements(); ++j) {
      EXPECT_DOUBLE_EQ(output.value()[j], expected.value()[j])
          << "request " << request << " element " << j;
    }
    // Resume is transparent: no plaintext crossed the wire around the
    // reconnects.
    for (const WireFrame& frame : outbound) {
      for (const auto& p : DoublePatterns(input)) {
        EXPECT_FALSE(Contains(frame.payload, p)) << "plaintext input leaked";
      }
      for (const auto& p : DoublePatterns(expected.value())) {
        EXPECT_FALSE(Contains(frame.payload, p)) << "plaintext output leaked";
      }
    }
  }

  EXPECT_GT(injector->stats().errors, 0u) << "no resets actually fired";
  EXPECT_GE(channel->reconnects(), 1u);
  EXPECT_EQ(channel->session_id(), session_id) << "session must survive";
  // The server echoes the session id on every served reply.
  ASSERT_FALSE(inbound.empty());
  for (const WireFrame& frame : inbound) {
    EXPECT_EQ(frame.session_id, session_id);
  }

  transport.value()->Close();
  server.Shutdown();
  server_thread.join();
  EXPECT_GE(server.connections_served(), 2u) << "resets never reconnected";
}

TEST_F(NetTest, TcpServerRestartLosesSessionButInferenceRecovers) {
  auto server_a = std::make_unique<ModelProviderTcpServer>(*plan_);
  ASSERT_TRUE(server_a->Listen(0).ok());
  const uint16_t port = server_a->port();
  std::thread thread_a([&] { EXPECT_TRUE(server_a->Serve().ok()); });

  auto transport =
      TcpTransport::Connect("127.0.0.1", port, keys_->public_key);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  auto* channel =
      dynamic_cast<ResilientTcpChannel*>(&transport.value()->channel());
  ASSERT_NE(channel, nullptr);
  const uint64_t first_session = channel->session_id();
  EXPECT_NE(first_session, 0u);

  DataProvider dp(transport.value()->view_plan(), *keys_, 183);
  ModelProviderApi& mp = *transport.value()->model_provider();
  const DoubleTensor input = MakeInput(185);
  auto expected = RunScaledPlainInference(**plan_, input);
  ASSERT_TRUE(expected.ok());

  auto first = RunResilientInference(mp, dp, 1, input);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Kill server A (drain cuts the idle connection loose) and start a
  // replacement on the same port. All session state dies with A.
  server_a->BeginDrain(0);
  thread_a.join();
  server_a.reset();

  ModelProviderTcpServer server_b(*plan_);
  ASSERT_TRUE(server_b.Listen(port).ok());
  std::thread thread_b([&] { EXPECT_TRUE(server_b.Serve().ok()); });

  // B answers the resume with kNotFound; the resilient driver restarts
  // the whole inference on a fresh session — bit-exact, because the
  // protocol output is invariant to permutation/randomizer choices.
  auto second = RunResilientInference(mp, dp, 2, input);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  for (int64_t j = 0; j < expected->NumElements(); ++j) {
    EXPECT_DOUBLE_EQ(first.value()[j], expected.value()[j]);
    EXPECT_DOUBLE_EQ(second.value()[j], expected.value()[j]);
  }
  EXPECT_NE(channel->session_id(), 0u);
  EXPECT_NE(channel->session_id(), first_session)
      << "the lost session must not be reused";
  EXPECT_GE(channel->reconnects(), 1u);

  transport.value()->Close();
  server_b.Shutdown();
  thread_b.join();
}

TEST_F(NetTest, ShutdownWakesBlockedAcceptImmediately) {
  ModelProviderServerOptions options;
  options.accept_poll_seconds = 30.0;  // shutdown must not wait this out
  ModelProviderTcpServer server(*plan_, options);
  ASSERT_TRUE(server.Listen(0).ok());
  std::thread thread([&server] { EXPECT_TRUE(server.Serve().ok()); });
  // Let Serve() commit to its long accept wait before signalling.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto begin = std::chrono::steady_clock::now();
  server.Shutdown();
  thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  EXPECT_LT(elapsed, 2.0) << "shutdown rode out the accept poll";
}

TEST_F(NetTest, BeginDrainCutsOffIdleConnectionPromptly) {
  ModelProviderTcpServer server(*plan_);
  ASSERT_TRUE(server.Listen(0).ok());
  std::thread thread([&server] { EXPECT_TRUE(server.ServeOne(10.0).ok()); });
  auto transport = TcpTransport::Connect("127.0.0.1", server.port(),
                                         keys_->public_key);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  // The connection is established and idle; its io timeout (30s) is far
  // away. Drain must cut it off at the grace deadline instead.
  const auto begin = std::chrono::steady_clock::now();
  server.BeginDrain(0.1);
  thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  EXPECT_LT(elapsed, 2.0) << "drain did not interrupt the idle wait";
  EXPECT_TRUE(server.stopping());
  transport.value()->Close();
}

TEST_F(NetTest, PingIsServedBeforeHandshakeAndDuringSession) {
  ModelProviderTcpServer server(*plan_);
  ASSERT_TRUE(server.Listen(0).ok());
  std::thread server_thread([&server] { EXPECT_TRUE(server.Serve().ok()); });

  // Pre-handshake, credential-free ping: what a liveness probe sends.
  auto socket = TcpSocket::Connect("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(socket.ok());
  const auto ping = EncodeFrame(MakeRequestFrame(WireMethod::kPing, 0, 0, {}));
  ASSERT_TRUE(socket->SendAll(ping.data(), ping.size(), 5.0).ok());
  auto pong = RecvFrame(*socket, 5.0);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(pong->is_response);
  EXPECT_EQ(pong->method, WireMethod::kPing);
  EXPECT_TRUE(FrameStatus(*pong).ok());
  socket->Close();

  // Mid-session ping through the resilient channel.
  auto transport = TcpTransport::Connect("127.0.0.1", server.port(),
                                         keys_->public_key);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  auto* channel =
      dynamic_cast<ResilientTcpChannel*>(&transport.value()->channel());
  ASSERT_NE(channel, nullptr);
  EXPECT_TRUE(channel->Ping().ok());

  transport.value()->Close();
  server.Shutdown();
  server_thread.join();
}

TEST_F(NetTest, UnknownSessionResumeIsCleanNotFound) {
  ModelProviderTcpServer server(*plan_);
  ASSERT_TRUE(server.Listen(0).ok());
  // A resume miss is the client's problem, not a server error.
  std::thread server_thread(
      [&server] { EXPECT_TRUE(server.ServeOne(10.0).ok()); });

  auto socket = TcpSocket::Connect("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(socket.ok());
  BufferWriter writer;
  keys_->public_key.Serialize(&writer);
  WireFrame hello =
      MakeRequestFrame(WireMethod::kHandshake, 0, 0, writer.TakeBytes());
  hello.session_id = 0xDEADBEEFULL;  // no server ever issued this
  const auto bytes = EncodeFrame(hello);
  ASSERT_TRUE(socket->SendAll(bytes.data(), bytes.size(), 5.0).ok());
  auto reply = RecvFrame(*socket, 5.0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(FrameStatus(*reply).code(), StatusCode::kNotFound);
  socket->Close();
  server_thread.join();
}

TEST_F(NetTest, ServerShedsRequestsWhoseDeadlineExpiredInFlight) {
  ModelProviderTcpServer server(*plan_);
  ASSERT_TRUE(server.Listen(0).ok());
  std::thread server_thread(
      [&server] { EXPECT_TRUE(server.ServeOne(10.0).ok()); });

  auto socket = TcpSocket::Connect("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(socket.ok());
  BufferWriter writer;
  keys_->public_key.Serialize(&writer);
  const auto hello = EncodeFrame(
      MakeRequestFrame(WireMethod::kHandshake, 0, 0, writer.TakeBytes()));
  ASSERT_TRUE(socket->SendAll(hello.data(), hello.size(), 5.0).ok());
  auto view = RecvFrame(*socket, 5.0);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_TRUE(FrameStatus(*view).ok());

  // A frame with a 1ms budget that takes ~50ms to arrive: the server
  // must shed it instead of dispatching.
  WireFrame late = MakeRequestFrame(WireMethod::kMpProcessRound, 9, 0,
                                    std::vector<uint8_t>(64, 0));
  late.deadline_micros = 1000;
  const auto bytes = EncodeFrame(late);
  ASSERT_TRUE(socket->SendAll(bytes.data(), 10, 5.0).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(
      socket->SendAll(bytes.data() + 10, bytes.size() - 10, 5.0).ok());
  auto reply = RecvFrame(*socket, 5.0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(FrameStatus(*reply).code(), StatusCode::kDeadlineExceeded);

  // Shedding refuses the request, not the connection.
  const auto ping = EncodeFrame(MakeRequestFrame(WireMethod::kPing, 0, 0, {}));
  ASSERT_TRUE(socket->SendAll(ping.data(), ping.size(), 5.0).ok());
  auto pong = RecvFrame(*socket, 5.0);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_TRUE(FrameStatus(*pong).ok());
  socket->Close();
  server_thread.join();
}

TEST_F(NetTest, SessionResumeDisabledKeepsLegacyWire) {
  ModelProviderTcpServer server(*plan_);
  ASSERT_TRUE(server.Listen(0).ok());
  std::thread server_thread(
      [&server] { EXPECT_TRUE(server.ServeOne(10.0).ok()); });

  TcpTransportOptions options;
  options.enable_session_resume = false;
  auto transport = TcpTransport::Connect("127.0.0.1", server.port(),
                                         keys_->public_key, options);
  ASSERT_TRUE(transport.ok()) << transport.status().ToString();
  // The legacy transport is the plain channel, not the resilient one.
  EXPECT_EQ(dynamic_cast<ResilientTcpChannel*>(&transport.value()->channel()),
            nullptr);

  std::vector<WireFrame> inbound;
  transport.value()->channel().SetFrameObserver(
      [&inbound](const WireFrame& frame, bool out) {
        if (!out) inbound.push_back(frame);
      });

  DataProvider dp(transport.value()->view_plan(), *keys_, 193);
  ModelProviderApi& mp = *transport.value()->model_provider();
  const DoubleTensor input = MakeInput(195);
  auto output = RunProtocolInference(mp, dp, 1, input);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  auto expected = RunScaledPlainInference(**plan_, input);
  ASSERT_TRUE(expected.ok());
  for (int64_t j = 0; j < expected->NumElements(); ++j) {
    EXPECT_DOUBLE_EQ(output.value()[j], expected.value()[j]);
  }

  // Nothing session-shaped reached the wire: every response decoded at a
  // pre-session revision with an empty session block.
  ASSERT_FALSE(inbound.empty());
  for (const WireFrame& frame : inbound) {
    EXPECT_LT(frame.version, kWireVersionSession);
    EXPECT_EQ(frame.session_id, 0u);
    EXPECT_EQ(frame.sequence, 0u);
    EXPECT_FALSE(frame.session_request);
  }

  transport.value()->Close();
  server_thread.join();
}

}  // namespace
}  // namespace ppstream
