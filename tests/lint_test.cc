// ppslint golden tests (DESIGN.md §10): every rule fires on its positive
// fixture, stays silent on its negative fixture, and the real tree is
// clean. Fixtures live in tools/ppslint/fixtures/ and are analyzed under
// synthetic rel paths so the scope rules (R2's crypto dirs, R1's wire.cc
// allowlist) engage exactly as they would in src/.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ppslint.h"

namespace {

using ppslint::AnalyzeFiles;
using ppslint::AnalyzeSource;
using ppslint::Options;
using ppslint::Report;
using ppslint::RuleId;

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(PPSLINT_FIXTURES_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

Options RepoOptions() {
  Options opts;
  opts.root = PPSLINT_REPO_ROOT;
  opts.include_roots = {"src"};
  return opts;
}

size_t CountRule(const Report& report, RuleId rule) {
  size_t n = 0;
  for (const auto& v : report.violations) n += v.rule == rule ? 1 : 0;
  return n;
}

size_t CountOtherRules(const Report& report, RuleId rule) {
  return report.violations.size() - CountRule(report, rule);
}

// Analyzes fixture `name` as if it lived at `rel_path` in the repo.
Report Analyze(const std::string& name, const std::string& rel_path) {
  return AnalyzeSource(RepoOptions(), rel_path, ReadFixture(name));
}

struct RuleCase {
  RuleId rule;
  const char* test_name;  // unique per row; rules can have several rows
  const char* pos_fixture;
  const char* pos_rel_path;
  size_t min_pos_findings;
  const char* neg_fixture;
  const char* neg_rel_path;
};

class PpslintRuleTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(PpslintRuleTest, FiresOnPositiveFixture) {
  const RuleCase& c = GetParam();
  const Report report = Analyze(c.pos_fixture, c.pos_rel_path);
  EXPECT_GE(CountRule(report, c.rule), c.min_pos_findings)
      << "rule did not fire on " << c.pos_fixture;
  EXPECT_EQ(CountOtherRules(report, c.rule), 0u)
      << "fixture " << c.pos_fixture << " tripped an unrelated rule";
}

TEST_P(PpslintRuleTest, SilentOnNegativeFixture) {
  const RuleCase& c = GetParam();
  const Report report = Analyze(c.neg_fixture, c.neg_rel_path);
  EXPECT_TRUE(report.violations.empty())
      << "unexpected finding in " << c.neg_fixture << ": "
      << (report.violations.empty()
              ? ""
              : report.violations[0].file + ":" +
                    std::to_string(report.violations[0].line) + " " +
                    report.violations[0].message);
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, PpslintRuleTest,
    ::testing::Values(
        RuleCase{RuleId::kR1, "R1", "r1_pos.cc", "src/core/r1_pos.cc", 2,
                 "r1_neg.cc", "src/core/r1_neg.cc"},
        RuleCase{RuleId::kR2, "R2", "r2_pos.cc", "src/crypto/r2_pos.cc", 4,
                 "r2_neg.cc", "src/crypto/r2_neg.cc"},
        RuleCase{RuleId::kR3, "R3", "r3_pos.cc", "src/stream/r3_pos.cc", 2,
                 "r3_neg.cc", "src/stream/r3_neg.cc"},
        // The /statusz contract as a lint case: a status renderer that
        // logs key/randomizer material fires; one that emits only
        // ordinals, counts, and ages (secret WORDS confined to JSON-key
        // string literals) stays silent.
        RuleCase{RuleId::kR3, "R3Statusz", "r3_statusz_pos.cc",
                 "src/net/r3_statusz_pos.cc", 2, "r3_statusz_neg.cc",
                 "src/net/r3_statusz_neg.cc"},
        RuleCase{RuleId::kR4, "R4", "r4_pos.cc", "src/crypto/r4_pos.cc", 2,
                 "r4_neg.cc", "src/crypto/r4_neg.cc"},
        RuleCase{RuleId::kR5, "R5", "r5_pos.cc", "src/stream/r5_pos.cc", 3,
                 "r5_neg.cc", "src/stream/r5_neg.cc"},
        // Lock discipline: unlocked access, wrong-mutex access, an
        // un-annotated sibling, and a held-EXCLUDES call all fire; the
        // disciplined mirror is silent.
        RuleCase{RuleId::kR6, "R6", "r6_pos.cc", "src/net/r6_pos.cc", 3,
                 "r6_neg.cc", "src/net/r6_neg.cc"},
        // Atomics hygiene: implicit seq_cst, relaxed store to a CAS
        // target, and a CAS-owned atomic next to unmarked plain state.
        RuleCase{RuleId::kR7, "R7", "r7_pos.cc", "src/obs/r7_pos.cc", 3,
                 "r7_neg.cc", "src/obs/r7_neg.cc"},
        // Blocking-under-lock: a direct sleep under a lock_guard and a
        // transitive helper reached through the call-graph fixpoint.
        RuleCase{RuleId::kR8, "R8", "r8_pos.cc", "src/net/r8_pos.cc", 2,
                 "r8_neg.cc", "src/net/r8_neg.cc"}),
    [](const ::testing::TestParamInfo<RuleCase>& tpi) {
      return std::string(tpi.param.test_name);
    });

// ---------------------------------------------------------------- scopes

TEST(PpslintScopeTest, R2OnlyFiresInCryptoCoreMpc) {
  const std::string content = ReadFixture("r2_pos.cc");
  EXPECT_FALSE(
      AnalyzeSource(RepoOptions(), "src/crypto/x.cc", content).violations
          .empty());
  EXPECT_FALSE(
      AnalyzeSource(RepoOptions(), "src/mpc/x.cc", content).violations
          .empty());
  // Outside the entropy scopes the same construct is legal (util/rng.h is
  // the sanctioned non-crypto PRNG home).
  EXPECT_TRUE(
      AnalyzeSource(RepoOptions(), "src/util/x.cc", content).violations
          .empty());
  EXPECT_TRUE(
      AnalyzeSource(RepoOptions(), "bench/x.cc", content).violations.empty());
}

TEST(PpslintScopeTest, R1AllowlistOnlyCoversWireCc) {
  const std::string content = ReadFixture("r1_allowlisted.cc");
  EXPECT_TRUE(
      AnalyzeSource(RepoOptions(), "src/net/wire.cc", content).violations
          .empty());
  // The same code anywhere else is a violation.
  EXPECT_FALSE(
      AnalyzeSource(RepoOptions(), "src/net/other.cc", content).violations
          .empty());
}

TEST(PpslintScopeTest, R7OnlyFiresInNetObsStream) {
  const std::string content = ReadFixture("r7_pos.cc");
  EXPECT_FALSE(
      AnalyzeSource(RepoOptions(), "src/stream/x.cc", content).violations
          .empty());
  // Outside the concurrency-hot directories the same atomics are legal
  // (bignum/crypto kernels are single-threaded by contract).
  EXPECT_TRUE(
      AnalyzeSource(RepoOptions(), "src/crypto/x.cc", content).violations
          .empty());
}

TEST(PpslintScopeTest, R5RawNewIsLegalInBignum) {
  const std::string content = ReadFixture("r5_pos.cc");
  const Report report =
      AnalyzeSource(RepoOptions(), "src/bignum/x.cc", content);
  // new/delete are waived in bignum; the catch (...) finding remains.
  EXPECT_EQ(CountRule(report, RuleId::kR5), 1u);
}

// ---------------------------------------------------------- suppressions

TEST(PpslintSuppressionTest, AllowCommentsWaiveCountAndReportUnused) {
  const Report report =
      Analyze("suppressed.cc", "src/stream/suppressed.cc");
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, RuleId::kR5);
  EXPECT_EQ(report.used_suppression_count(), 2u);
  EXPECT_EQ(report.unused_suppressions().size(), 2u);
  // Reasons survive parsing.
  bool found_reason = false;
  for (const auto& s : report.suppressions) {
    found_reason |= s.reason.find("next-line suppression") !=
                    std::string::npos;
  }
  EXPECT_TRUE(found_reason);
}

// ------------------------------------------------------------- vandalism

// Un-annotating a guarded field must not pass silently: strip the first
// PPS_GUARDED_BY from the clean R6 fixture and the sibling-completeness
// check has to start firing on the now-bare member.
TEST(PpslintVandalTest, RemovingAGuardAnnotationTripsR6) {
  std::string content = ReadFixture("r6_neg.cc");
  const std::string annotation = " PPS_GUARDED_BY(mutex_)";
  const size_t at = content.find(annotation);
  ASSERT_NE(at, std::string::npos) << "fixture lost its annotations";
  content.erase(at, annotation.size());
  const Report report =
      AnalyzeSource(RepoOptions(), "src/net/r6_neg.cc", content);
  EXPECT_GE(CountRule(report, RuleId::kR6), 1u)
      << "un-annotated guarded field went unnoticed";
  bool names_field = false;
  for (const auto& v : report.violations) {
    names_field |= v.message.find("entries_") != std::string::npos;
  }
  EXPECT_TRUE(names_field);
}

// ----------------------------------------------------------- rule metadata

TEST(PpslintExplainTest, EveryRuleHasNameDescriptionAndExplanation) {
  const auto& rules = ppslint::AllRules();
  EXPECT_EQ(rules.size(), 8u);
  for (RuleId rule : rules) {
    EXPECT_FALSE(std::string(ppslint::RuleIdName(rule)).empty());
    EXPECT_FALSE(std::string(ppslint::RuleIdDescription(rule)).empty());
    // --explain backs each rule with a rationale long enough to actually
    // explain the historical bug it encodes.
    EXPECT_GT(std::string(ppslint::RuleIdExplanation(rule)).size(), 80u);
  }
}

// -------------------------------------------------------- include cycles

TEST(PpslintIncludeGraphTest, DetectsCycleOnce) {
  Options opts;
  opts.root = std::string(PPSLINT_FIXTURES_DIR) + "/cycle";
  const Report report = AnalyzeFiles(opts, {"cycle_a.h", "cycle_b.h"});
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, RuleId::kR5);
  EXPECT_NE(report.violations[0].message.find("#include cycle"),
            std::string::npos);
}

TEST(PpslintIncludeGraphTest, SilentOnAcyclicChain) {
  Options opts;
  opts.root = std::string(PPSLINT_FIXTURES_DIR) + "/acyclic";
  const Report report = AnalyzeFiles(opts, {"chain_a.h", "chain_b.h"});
  EXPECT_TRUE(report.violations.empty());
}

// ----------------------------------------------------------- real tree

TEST(PpslintRepoTest, RealTreeIsCleanWithNoUnusedSuppressions) {
  const Options opts = RepoOptions();
  const std::vector<std::string> files =
      ppslint::CollectSourceFiles(opts, {"src", "examples", "bench"});
  ASSERT_GT(files.size(), 100u) << "repo scan looks truncated";
  const Report report = AnalyzeFiles(opts, files);
  for (const auto& v : report.violations) {
    ADD_FAILURE() << v.file << ":" << v.line << ": ["
                  << ppslint::RuleIdName(v.rule) << "] " << v.message;
  }
  for (const auto* s : report.unused_suppressions()) {
    ADD_FAILURE() << s->file << ":" << s->comment_line
                  << ": unused suppression";
  }
  // The audited waivers (secure_rng entropy, obs singletons, transport
  // factory + the concurrency-plane R6/R8 contracts) stay accounted for.
  EXPECT_GE(report.used_suppression_count(), 6u);
}

}  // namespace
