// Chaos tests: fault injection across the stream runtime.
//
// The contract under test (DESIGN.md "Failure model & fault tolerance"):
//   1. N submitted requests always yield exactly N NextResult() outcomes —
//      success or error status — with no hangs, at any injected fault rate;
//   2. a failing request's status names the originating stage and error;
//   3. the model provider retains zero per-request obfuscation state once
//      the stream is drained, whether requests succeeded or failed.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/protocol.h"
#include "nn/layers.h"
#include "sim/cluster_sim.h"
#include "stream/engine.h"
#include "stream/retry_policy.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ppstream {
namespace {

// ------------------------------------------------------- fault injector

TEST(FaultInjectorTest, NoRulesIsNoOp) {
  FaultInjector injector(1);
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.Fail("stage.anything").ok());
  std::vector<uint8_t> payload = {1, 2, 3};
  EXPECT_FALSE(injector.Corrupt("stage.anything", payload));
  EXPECT_EQ(payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(injector.stats().probes, 0u);
}

TEST(FaultInjectorTest, DeterministicNthCall) {
  FaultInjector injector(1);
  FaultRule rule;
  rule.site_pattern = "stage.a";
  rule.every_nth = 3;
  rule.error_code = StatusCode::kIoError;
  injector.AddRule(rule);
  int failures = 0;
  for (int i = 0; i < 9; ++i) {
    Status st = injector.Fail("stage.a");
    if (!st.ok()) {
      ++failures;
      EXPECT_EQ(st.code(), StatusCode::kIoError);
      EXPECT_NE(st.message().find("stage.a"), std::string::npos)
          << "injected error must name the site";
    }
  }
  EXPECT_EQ(failures, 3);  // calls 3, 6, 9
  // Non-matching site is untouched (and does not advance the counter).
  EXPECT_TRUE(injector.Fail("stage.b").ok());
}

TEST(FaultInjectorTest, ProbabilisticRateIsReproducible) {
  auto run = [](uint64_t seed) {
    FaultInjector injector(seed);
    FaultRule rule;
    rule.probability = 0.1;
    injector.AddRule(rule);
    int failures = 0;
    for (int i = 0; i < 2000; ++i) {
      if (!injector.Fail("stage.x").ok()) ++failures;
    }
    return failures;
  };
  const int a = run(42);
  EXPECT_EQ(a, run(42)) << "same seed, same fault sequence";
  // ~10% of 2000, with generous slack.
  EXPECT_GT(a, 120);
  EXPECT_LT(a, 300);
}

TEST(FaultInjectorTest, CorruptionFlipsBytes) {
  FaultInjector injector(7);
  FaultRule rule;
  rule.kind = FaultKind::kCorruption;
  rule.every_nth = 1;
  rule.corrupt_bytes = 2;
  injector.AddRule(rule);
  std::vector<uint8_t> payload(16, 0);
  EXPECT_TRUE(injector.Corrupt("stage.x", payload));
  int changed = 0;
  for (uint8_t b : payload) changed += b != 0;
  EXPECT_GE(changed, 1);
  EXPECT_LE(changed, 2);
  EXPECT_EQ(injector.stats().corruptions, 1u);
}

TEST(FaultInjectorTest, LatencyRuleDelays) {
  FaultInjector injector(7);
  FaultRule rule;
  rule.kind = FaultKind::kLatency;
  rule.every_nth = 1;
  rule.latency_seconds = 0.02;
  injector.AddRule(rule);
  WallTimer timer;
  injector.Delay("channel.0");
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
  EXPECT_EQ(injector.stats().latencies, 1u);
  // Delay() must ignore error rules; Fail() must honor latency rules.
  EXPECT_TRUE(injector.Fail("channel.0").ok());
  EXPECT_EQ(injector.stats().latencies, 2u);
}

// --------------------------------------------------------- retry policy

TEST(RetryPolicyTest, BackoffGrowsAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.010;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 0.035;
  policy.jitter = 0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1, rng), 0.010);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2, rng), 0.020);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3, rng), 0.035);  // capped
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(9, rng), 0.035);
}

TEST(RetryPolicyTest, JitterStaysInRange) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 0.010;
  policy.jitter = 0.5;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double b = policy.BackoffSeconds(1, rng);
    EXPECT_GE(b, 0.005);
    EXPECT_LE(b, 0.010);
  }
}

TEST(RetryPolicyTest, FromMaxRetriesKeepsSeedSemantics) {
  const RetryPolicy policy = RetryPolicy::FromMaxRetries(3);
  EXPECT_EQ(policy.max_retries, 3);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1, rng), 0);  // immediate retry
  EXPECT_DOUBLE_EQ(policy.deadline_seconds, 0);        // no deadline
}

// -------------------------------------------------------- chaos: engine

class ChaosEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(21);
    auto pair = Paillier::GenerateKeyPair(256, rng);
    ASSERT_TRUE(pair.ok());
    keys_ = new PaillierKeyPair(std::move(pair).value());

    Rng mrng(22);
    Model model(Shape{4}, "chaos");
    PPS_CHECK_OK(model.Add(DenseLayer::Random(4, 6, mrng)));
    PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
    PPS_CHECK_OK(model.Add(DenseLayer::Random(6, 3, mrng)));
    PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
    auto plan = CompilePlan(model, 1000);
    ASSERT_TRUE(plan.ok());
    plan_ = new std::shared_ptr<InferencePlan>(
        std::make_shared<InferencePlan>(std::move(plan).value()));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete plan_;
  }

  struct Drained {
    size_t successes = 0;
    size_t failures = 0;
  };

  /// Submits `n` requests, drains exactly `n` outcomes, shuts down, and
  /// verifies the three-point contract at the top of this file.
  Drained RunChaosRound(const EngineConfig& config, size_t n,
                        std::shared_ptr<ModelProvider>* mp_out = nullptr) {
    auto mp = std::make_shared<ModelProvider>(*plan_, keys_->public_key, 31);
    auto dp = std::make_shared<DataProvider>(*plan_, *keys_, 32);
    PpStreamEngine engine(mp, dp, config);
    EXPECT_TRUE(engine.Start().ok());
    Rng rng(33);
    for (size_t i = 0; i < n; ++i) {
      DoubleTensor x{Shape{4}};
      for (int64_t j = 0; j < 4; ++j) x[j] = rng.NextUniform(-2, 2);
      EXPECT_TRUE(engine.Submit(i, x).ok());
    }
    Drained drained;
    for (size_t i = 0; i < n; ++i) {
      auto result = engine.NextResult();
      if (result.ok()) {
        ++drained.successes;
      } else {
        ++drained.failures;
        EXPECT_NE(result.status().message().find("failed at stage"),
                  std::string::npos)
            << result.status().ToString();
      }
    }
    engine.Shutdown();
    // After the drain the stream must be ended...
    EXPECT_FALSE(engine.NextResult().ok());
    // ...and no per-request obfuscation state may survive, success or not.
    EXPECT_EQ(mp->PendingRequestsForTesting(), 0u);
    if (mp_out != nullptr) *mp_out = mp;
    return drained;
  }

  static PaillierKeyPair* keys_;
  static std::shared_ptr<InferencePlan>* plan_;
};

PaillierKeyPair* ChaosEngineTest::keys_ = nullptr;
std::shared_ptr<InferencePlan>* ChaosEngineTest::plan_ = nullptr;

TEST_F(ChaosEngineTest, EveryRequestYieldsExactlyOneOutcomeUnderFaults) {
  // Sweep per-stage error rates from 1% to 10%: the headline acceptance
  // criterion. All probes (stage + provider entry points) share the rate.
  for (double rate : {0.01, 0.05, 0.10}) {
    auto injector = std::make_shared<FaultInjector>(
        static_cast<uint64_t>(rate * 1000) + 99);
    FaultRule rule;
    rule.site_pattern = "stage.";
    rule.probability = rate;
    injector->AddRule(rule);
    EngineConfig config;
    config.max_retries = 1;
    config.fault_injector = injector;
    const size_t n = 12;
    const Drained drained = RunChaosRound(config, n);
    EXPECT_EQ(drained.successes + drained.failures, n)
        << "rate " << rate << ": outcomes must cover every submission";
  }
}

TEST_F(ChaosEngineTest, FailureNamesOriginatingStageAndReleasesState) {
  // Deterministically kill round-1 inverse obfuscation: by then the
  // request has live permutation state at the model provider, so this is
  // the regression test for the seed's state leak on the failure path.
  auto injector = std::make_shared<FaultInjector>(5);
  FaultRule rule;
  rule.site_pattern = "mp.InverseObfuscate";
  rule.every_nth = 1;
  rule.error_code = StatusCode::kProtocolError;
  injector->AddRule(rule);
  EngineConfig config;
  config.max_retries = 0;
  config.fault_injector = injector;

  auto mp = std::make_shared<ModelProvider>(*plan_, keys_->public_key, 41);
  auto dp = std::make_shared<DataProvider>(*plan_, *keys_, 42);
  PpStreamEngine engine(mp, dp, config);
  ASSERT_TRUE(engine.Start().ok());
  DoubleTensor x(Shape{4}, {0.5, -1, 1.5, 0});
  ASSERT_TRUE(engine.Submit(77, x).ok());
  auto result = engine.NextResult();
  ASSERT_FALSE(result.ok()) << "the failure must surface, not hang";
  EXPECT_EQ(result.status().code(), StatusCode::kProtocolError);
  EXPECT_NE(result.status().message().find("request 77"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("mp-linear-1"), std::string::npos)
      << "status must name the originating stage: "
      << result.status().ToString();
  EXPECT_EQ(mp->PendingRequestsForTesting(), 0u)
      << "failed request must not leak obfuscation state";
  engine.Shutdown();
}

TEST_F(ChaosEngineTest, TransientProviderFaultsAreRetriedToSuccess) {
  // 30% provider-level fault rate with a generous retry budget: every
  // request should still succeed (retries mask the faults), and the
  // injector must actually have fired.
  auto injector = std::make_shared<FaultInjector>(17);
  FaultRule rule;
  rule.site_pattern = "mp.";
  rule.probability = 0.30;
  injector->AddRule(rule);
  EngineConfig config;
  RetryPolicy policy;
  policy.max_retries = 25;
  policy.initial_backoff_seconds = 0.0005;
  policy.max_backoff_seconds = 0.002;
  config.retry_policy = policy;
  config.fault_injector = injector;
  const Drained drained = RunChaosRound(config, 8);
  EXPECT_EQ(drained.successes, 8u);
  EXPECT_EQ(drained.failures, 0u);
  EXPECT_GT(injector->stats().errors, 0u) << "faults must have fired";
}

TEST_F(ChaosEngineTest, PayloadCorruptionIsCaughtAndRetried) {
  // Corrupt the serialized tensor entering one stage on every 2nd attempt:
  // deserialization (or ciphertext validation) fails, the retry sees the
  // clean original bytes and succeeds.
  auto injector = std::make_shared<FaultInjector>(23);
  FaultRule rule;
  rule.site_pattern = "stage.mp-linear-0";
  rule.kind = FaultKind::kCorruption;
  rule.every_nth = 2;
  rule.corrupt_bytes = 8;
  injector->AddRule(rule);
  EngineConfig config;
  config.max_retries = 3;
  config.fault_injector = injector;
  const Drained drained = RunChaosRound(config, 6);
  EXPECT_EQ(drained.successes, 6u);
  EXPECT_GT(injector->stats().corruptions, 0u);
}

TEST_F(ChaosEngineTest, DeadlineFailsRequestInsteadOfRetryingForever) {
  // Stage always fails; a tight deadline converts the retry storm into a
  // DeadlineExceeded outcome instead of burning the full retry budget.
  auto injector = std::make_shared<FaultInjector>(29);
  FaultRule rule;
  rule.site_pattern = "stage.dp-encrypt";
  rule.every_nth = 1;
  injector->AddRule(rule);
  EngineConfig config;
  RetryPolicy policy;
  policy.max_retries = 1000000;  // deadline, not attempts, must stop it
  policy.initial_backoff_seconds = 0.002;
  policy.max_backoff_seconds = 0.010;
  policy.deadline_seconds = 0.050;
  config.retry_policy = policy;
  config.fault_injector = injector;

  auto mp = std::make_shared<ModelProvider>(*plan_, keys_->public_key, 51);
  auto dp = std::make_shared<DataProvider>(*plan_, *keys_, 52);
  PpStreamEngine engine(mp, dp, config);
  ASSERT_TRUE(engine.Start().ok());
  DoubleTensor x(Shape{4}, {1, 2, 3, 4});
  ASSERT_TRUE(engine.Submit(1, x).ok());
  WallTimer timer;
  auto result = engine.NextResult();
  EXPECT_LT(timer.ElapsedSeconds(), 5.0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  engine.Shutdown();
  EXPECT_EQ(mp->PendingRequestsForTesting(), 0u);
}

TEST_F(ChaosEngineTest, ChannelLatencyInjectionOnlySlowsTheStream) {
  auto injector = std::make_shared<FaultInjector>(37);
  FaultRule rule;
  rule.site_pattern = "channel.";
  rule.kind = FaultKind::kLatency;
  rule.probability = 0.25;
  rule.latency_seconds = 0.001;
  injector->AddRule(rule);
  EngineConfig config;
  config.fault_injector = injector;
  const Drained drained = RunChaosRound(config, 6);
  EXPECT_EQ(drained.successes, 6u);
  EXPECT_EQ(drained.failures, 0u);
  EXPECT_GT(injector->stats().latencies, 0u);
}

// ----------------------------------------------- chaos: cluster simulator

std::vector<SimStageSpec> ThreeReliableStages() {
  std::vector<SimStageSpec> stages(3);
  for (auto& s : stages) {
    s.single_thread_seconds = 0.010;
    s.parallel_fraction = 0;
  }
  return stages;
}

TEST(ClusterSimFaultTest, ZeroFailureProbMatchesSeedBehaviour) {
  SimWorkload workload;
  workload.num_requests = 10;
  auto report = SimulatePipeline(ThreeReliableStages(), SimNetwork{},
                                 workload);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().failed_requests, 0u);
  EXPECT_EQ(report.value().total_retries, 0u);
  // Saturated 3-stage pipeline of 10ms stages over 10 requests:
  // makespan = (3 + 9) * 10ms.
  EXPECT_NEAR(report.value().makespan_seconds, 0.12, 1e-9);
}

TEST(ClusterSimFaultTest, FaultsDegradeLatencyAndThroughput) {
  auto stages = ThreeReliableStages();
  SimWorkload workload;
  workload.num_requests = 200;
  auto clean = SimulatePipeline(stages, SimNetwork{}, workload);
  ASSERT_TRUE(clean.ok());

  for (auto& s : stages) s.failure_prob = 0.10;
  workload.max_retries = 2;
  workload.retry_backoff_seconds = 0.001;
  auto faulty = SimulatePipeline(stages, SimNetwork{}, workload);
  ASSERT_TRUE(faulty.ok());

  EXPECT_GT(faulty.value().total_retries, 0u);
  EXPECT_GT(faulty.value().avg_latency_seconds,
            clean.value().avg_latency_seconds);
  EXPECT_LT(faulty.value().throughput_rps, clean.value().throughput_rps);
  // At 10% per attempt with 2 retries, P(request fails) = 1 - (1-p^3)^3
  // ≈ 0.3%; over 200 requests a handful at most.
  EXPECT_LT(faulty.value().failed_requests, 10u);
}

TEST(ClusterSimFaultTest, DeterministicAcrossRunsSameSeed) {
  auto stages = ThreeReliableStages();
  for (auto& s : stages) s.failure_prob = 0.2;
  SimWorkload workload;
  workload.num_requests = 50;
  workload.max_retries = 1;
  workload.fault_seed = 77;
  auto a = SimulatePipeline(stages, SimNetwork{}, workload);
  auto b = SimulatePipeline(stages, SimNetwork{}, workload);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().total_retries, b.value().total_retries);
  EXPECT_EQ(a.value().failed_requests, b.value().failed_requests);
  EXPECT_DOUBLE_EQ(a.value().makespan_seconds, b.value().makespan_seconds);
}

TEST(ClusterSimFaultTest, ExpectedAttemptsFormula) {
  SimStageSpec spec;
  spec.failure_prob = 0;
  EXPECT_DOUBLE_EQ(spec.ExpectedAttempts(5), 1.0);
  spec.failure_prob = 0.5;
  // 1 + 0.5 + 0.25 = 1.75 with two retries.
  EXPECT_DOUBLE_EQ(spec.ExpectedAttempts(2), 1.75);
  spec.failure_prob = 1.0;
  EXPECT_DOUBLE_EQ(spec.ExpectedAttempts(3), 4.0);
}

TEST(ClusterSimFaultTest, StablePipelineStaysStableUnderFaults) {
  auto stages = ThreeReliableStages();
  for (auto& s : stages) s.failure_prob = 0.15;
  SimWorkload fault_model;
  fault_model.max_retries = 3;
  fault_model.retry_backoff_seconds = 0.001;
  auto report = SimulateStablePipeline(stages, SimNetwork{}, 100, 1.1,
                                       fault_model);
  ASSERT_TRUE(report.ok());
  // The interarrival accounts for expected retry occupancy, so the
  // average latency must stay within a small multiple of the zero-queue
  // service time (3 stages × 10ms × expected attempts ≈ 35ms).
  EXPECT_LT(report.value().avg_latency_seconds, 0.2);
}

}  // namespace
}  // namespace ppstream
