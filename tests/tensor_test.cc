// Unit tests for shapes, tensors, and the plaintext kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ppstream {
namespace {

TEST(ShapeTest, NumElementsAndFlatIndex) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.NumElements(), 24);
  EXPECT_EQ(s.FlatIndex({0, 0, 0}), 0);
  EXPECT_EQ(s.FlatIndex({0, 0, 3}), 3);
  EXPECT_EQ(s.FlatIndex({0, 1, 0}), 4);
  EXPECT_EQ(s.FlatIndex({1, 2, 3}), 23);
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
}

TEST(ShapeTest, ScalarShape) {
  Shape s{};
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.NumElements(), 1);
}

TEST(TensorTest, ConstructionAndAccess) {
  Tensor<double> t{Shape{2, 2}};
  EXPECT_EQ(t.NumElements(), 4);
  EXPECT_EQ(t[0], 0.0);
  t.At({1, 0}) = 5.0;
  EXPECT_EQ(t[2], 5.0);
}

TEST(TensorTest, ReshapePreservesLexicographicOrder) {
  Tensor<int64_t> t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor<int64_t> r = t.Reshape(Shape{3, 2});
  EXPECT_EQ(r.At({0, 0}), 1);
  EXPECT_EQ(r.At({0, 1}), 2);
  EXPECT_EQ(r.At({2, 1}), 6);
  Tensor<int64_t> f = t.Flatten();
  EXPECT_EQ(f.shape().rank(), 1u);
  EXPECT_EQ(f[5], 6);
}

TEST(TensorTest, MapConvertsTypes) {
  Tensor<double> t(Shape{3}, {1.4, 2.6, -0.5});
  auto rounded = t.Map<int64_t>(
      [](double v) { return static_cast<int64_t>(std::llround(v)); });
  EXPECT_EQ(rounded[0], 1);
  EXPECT_EQ(rounded[1], 3);
  EXPECT_EQ(rounded[2], -1);  // llround rounds halfway away from zero
}

TEST(MatMulTest, KnownProduct) {
  DoubleTensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  DoubleTensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  auto c = MatMul(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().shape(), (Shape{2, 2}));
  EXPECT_DOUBLE_EQ(c.value()[0], 58);
  EXPECT_DOUBLE_EQ(c.value()[1], 64);
  EXPECT_DOUBLE_EQ(c.value()[2], 139);
  EXPECT_DOUBLE_EQ(c.value()[3], 154);
}

TEST(MatMulTest, DimensionMismatchFails) {
  DoubleTensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  DoubleTensor b(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_FALSE(MatMul(a, b).ok());
  EXPECT_FALSE(MatMul(a.Flatten(), b).ok());
}

TEST(DenseForwardTest, ComputesAffineMap) {
  DoubleTensor w(Shape{2, 3}, {1, 0, -1, 2, 2, 2});
  DoubleTensor b(Shape{2}, {10, -10});
  DoubleTensor x(Shape{3}, {1, 2, 3});
  auto y = DenseForward(w, b, x);
  ASSERT_TRUE(y.ok());
  EXPECT_DOUBLE_EQ(y.value()[0], 1 - 3 + 10);
  EXPECT_DOUBLE_EQ(y.value()[1], 2 + 4 + 6 - 10);
}

TEST(Conv2DTest, PaperFigure5Example) {
  // The 3x3 input / 2x2 filter / stride-1 example from paper Figure 5(a).
  Conv2DGeometry g;
  g.in_channels = 1;
  g.in_height = 3;
  g.in_width = 3;
  g.out_channels = 1;
  g.kernel_h = 2;
  g.kernel_w = 2;
  g.stride = 1;
  g.padding = 0;
  DoubleTensor input(Shape{1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  DoubleTensor filter(Shape{1, 1, 2, 2}, {1, 0, 0, 1});
  DoubleTensor bias(Shape{1}, {0});
  auto out = Conv2DForward(g, filter, bias, input);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().shape(), (Shape{1, 2, 2}));
  // Each output = m_ij + m_(i+1)(j+1).
  EXPECT_DOUBLE_EQ(out.value()[0], 1 + 5);
  EXPECT_DOUBLE_EQ(out.value()[1], 2 + 6);
  EXPECT_DOUBLE_EQ(out.value()[2], 4 + 8);
  EXPECT_DOUBLE_EQ(out.value()[3], 5 + 9);
}

TEST(Conv2DTest, StrideAndPadding) {
  Conv2DGeometry g;
  g.in_channels = 1;
  g.in_height = 4;
  g.in_width = 4;
  g.out_channels = 1;
  g.kernel_h = 3;
  g.kernel_w = 3;
  g.stride = 2;
  g.padding = 1;
  EXPECT_EQ(g.out_height(), 2);
  EXPECT_EQ(g.out_width(), 2);
  DoubleTensor input{Shape{1, 4, 4}};
  for (int64_t i = 0; i < 16; ++i) input[i] = 1.0;
  DoubleTensor filter{Shape{1, 1, 3, 3}};
  for (int64_t i = 0; i < 9; ++i) filter[i] = 1.0;
  DoubleTensor bias(Shape{1}, {0});
  auto out = Conv2DForward(g, filter, bias, input);
  ASSERT_TRUE(out.ok());
  // Top-left window clipped by padding: only 4 valid taps.
  EXPECT_DOUBLE_EQ(out.value()[0], 4);
  // Window at (1,1) offset covers rows 1..3 cols 1..3 fully: 9 taps.
  EXPECT_DOUBLE_EQ(out.value()[3], 9);
}

TEST(Conv2DTest, MultiChannel) {
  Conv2DGeometry g;
  g.in_channels = 2;
  g.in_height = 2;
  g.in_width = 2;
  g.out_channels = 1;
  g.kernel_h = 2;
  g.kernel_w = 2;
  g.stride = 1;
  g.padding = 0;
  DoubleTensor input(Shape{2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  DoubleTensor filter(Shape{1, 2, 2, 2}, {1, 1, 1, 1, 2, 2, 2, 2});
  DoubleTensor bias(Shape{1}, {5});
  auto out = Conv2DForward(g, filter, bias, input);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value()[0], (1 + 2 + 3 + 4) + 2 * (10 + 20 + 30 + 40) + 5);
}

TEST(Conv2DTest, RejectsBadGeometry) {
  Conv2DGeometry g;
  g.in_channels = 1;
  g.in_height = 2;
  g.in_width = 2;
  g.out_channels = 1;
  g.kernel_h = 5;
  g.kernel_w = 5;
  EXPECT_FALSE(g.Validate().ok());  // empty output
  g.kernel_h = g.kernel_w = 2;
  g.stride = 0;
  EXPECT_FALSE(g.Validate().ok());
  g.stride = 1;
  g.padding = -1;
  EXPECT_FALSE(g.Validate().ok());
}

TEST(PoolTest, MaxPoolSelectsMaxima) {
  DoubleTensor input(Shape{1, 4, 4},
                     {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
  auto out = MaxPool2D(input, 2, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().shape(), (Shape{1, 2, 2}));
  EXPECT_DOUBLE_EQ(out.value()[0], 6);
  EXPECT_DOUBLE_EQ(out.value()[1], 8);
  EXPECT_DOUBLE_EQ(out.value()[2], 14);
  EXPECT_DOUBLE_EQ(out.value()[3], 16);
}

TEST(PoolTest, AvgPoolAverages) {
  DoubleTensor input(Shape{1, 2, 2}, {1, 3, 5, 7});
  auto out = AvgPool2D(input, 2, 2);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.value()[0], 4);
}

TEST(PoolTest, RejectsOversizedWindow) {
  DoubleTensor input{Shape{1, 2, 2}};
  EXPECT_FALSE(MaxPool2D(input, 3, 1).ok());
  EXPECT_FALSE(MaxPool2D(input.Flatten(), 1, 1).ok());
}

TEST(ActivationTest, Relu) {
  DoubleTensor x(Shape{4}, {-2, -0.5, 0, 3});
  DoubleTensor y = Relu(x);
  EXPECT_DOUBLE_EQ(y[0], 0);
  EXPECT_DOUBLE_EQ(y[1], 0);
  EXPECT_DOUBLE_EQ(y[2], 0);
  EXPECT_DOUBLE_EQ(y[3], 3);
}

TEST(ActivationTest, SigmoidRangeAndSymmetry) {
  DoubleTensor x(Shape{3}, {-100, 0, 100});
  DoubleTensor y = Sigmoid(x);
  EXPECT_NEAR(y[0], 0, 1e-10);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
  EXPECT_NEAR(y[2], 1, 1e-10);
}

TEST(ActivationTest, SoftmaxSumsToOneAndIsStable) {
  DoubleTensor x(Shape{3}, {1000, 1001, 1002});  // would overflow naive exp
  DoubleTensor y = Softmax(x);
  double sum = y[0] + y[1] + y[2];
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_GT(y[2], y[1]);
  EXPECT_GT(y[1], y[0]);
}

TEST(OpsTest, AddAndScale) {
  DoubleTensor a(Shape{2}, {1, 2});
  DoubleTensor b(Shape{2}, {10, 20});
  auto sum = Add(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum.value()[1], 22);
  EXPECT_FALSE(Add(a, DoubleTensor{Shape{3}}).ok());
  EXPECT_DOUBLE_EQ(Scale(a, -2)[0], -2);
}

TEST(OpsTest, ArgMax) {
  DoubleTensor x(Shape{4}, {1, 5, 5, 2});
  EXPECT_EQ(ArgMax(x), 1);  // first of the tied maxima
}

}  // namespace
}  // namespace ppstream
