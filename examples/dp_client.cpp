// Data-provider half of the two-process deployment. Owns the Paillier
// key pair and the input images; connects to a running mp_server, learns
// the weight-free plan view from the handshake, and runs real inferences
// over the versioned wire format:
//
//   ./dp_client 19777 [num_requests] [--trace dp_trace.json]
//
// With --trace, every request's spans (and, via the wire header's trace
// block, the server's spans under the same trace ids) are dumped as
// Chrome trace-event JSON, and the first request's span tree is rendered
// to stdout.
//
// The private key and the plaintext inputs never leave this process; the
// server only ever sees Paillier ciphertexts (in permuted slot order for
// the values it could otherwise correlate).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

#include "core/protocol.h"
#include "net/transport.h"
#include "nn/model_zoo.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ppstream;

namespace {

/// Renders one trace's spans as an indented tree (depth from parent ids,
/// siblings in start order) — the README's "rendered trace" output.
void PrintTraceTree(const std::vector<obs::SpanRecord>& spans,
                    uint64_t trace_id) {
  std::vector<const obs::SpanRecord*> trace;
  for (const auto& s : spans) {
    if (s.trace_id == trace_id) trace.push_back(&s);
  }
  std::sort(trace.begin(), trace.end(),
            [](const obs::SpanRecord* a, const obs::SpanRecord* b) {
              return a->start_seconds < b->start_seconds;
            });
  std::map<uint64_t, int> depth;
  for (const obs::SpanRecord* s : trace) {
    const auto parent = depth.find(s->parent_span_id);
    const int d = parent == depth.end() ? 0 : parent->second + 1;
    depth[s->span_id] = d;
    std::printf("  %*s%-28s %8.2f ms\n", 2 * d, "", s->name.c_str(),
                s->duration_seconds * 1e3);
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 19777;
  size_t num_requests = 3;
  const char* trace_path = nullptr;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (positional == 0) {
      port = static_cast<uint16_t>(std::atoi(argv[i]));
      ++positional;
    } else {
      num_requests = std::strtoull(argv[i], nullptr, 10);
    }
  }
  if (trace_path != nullptr) obs::Tracer::Global().SetEnabled(true);

  std::printf("== PP-Stream data-provider client ==\n\n");

  // The same dataset seed as mp_server, so labels line up.
  DatasetSplit data = MakeZooDataset(ZooModelId::kMnist2,
                                     /*size_scale=*/0.005, /*seed=*/3);

  Rng key_rng(5);
  auto keys = Paillier::GenerateKeyPair(256, key_rng);  // demo-sized keys
  PPS_CHECK_OK(keys.status());

  // Retry the dial so the client may be launched before the server
  // finishes binding (CI starts both concurrently).
  TcpTransportOptions options;
  options.connect_retry.max_retries = 40;
  options.connect_retry.initial_backoff_seconds = 0.25;
  options.connect_retry.backoff_multiplier = 1.0;
  options.connect_retry.max_backoff_seconds = 0.25;
  options.connect_retry.jitter = 0;
  options.connect_retry.deadline_seconds = 20.0;
  auto transport =
      TcpTransport::Connect("127.0.0.1", port, keys->public_key, options);
  PPS_CHECK_OK(transport.status());

  auto view = transport.value()->view_plan();
  PPS_CHECK(view->is_data_provider_view);
  std::printf("connected; handshake delivered a %zu-round weight-free plan\n",
              view->NumRounds());

  DataProvider dp(view, std::move(keys).value(), /*enc_seed=*/7);
  ModelProviderApi& mp = *transport.value()->model_provider();

  size_t correct = 0;
  WallTimer timer;
  TransportStats last = transport.value()->stats();
  for (size_t i = 0; i < num_requests && i < data.test.samples.size(); ++i) {
    auto output = RunProtocolInference(mp, dp, /*request_id=*/i + 1,
                                       data.test.samples[i]);
    PPS_CHECK_OK(output.status());
    const size_t predicted = ArgMax(output.value());
    const TransportStats now = transport.value()->stats();
    std::printf("request %zu: predicted %zu (label %ld), %llu B sent / %llu B "
                "received\n",
                i + 1, predicted, static_cast<long>(data.test.labels[i]),
                static_cast<unsigned long long>(now.bytes_sent -
                                                last.bytes_sent),
                static_cast<unsigned long long>(now.bytes_received -
                                                last.bytes_received));
    correct += predicted == static_cast<size_t>(data.test.labels[i]);
    last = now;
  }
  const double elapsed = timer.ElapsedSeconds();

  const TransportStats total = transport.value()->stats();
  std::printf("\n%zu inferences in %.2f s (%.0f%% correct)\n", num_requests,
              elapsed, 100.0 * correct / num_requests);
  std::printf("wire totals: %llu frames / %llu B sent, %llu frames / %llu B "
              "received\n",
              static_cast<unsigned long long>(total.frames_sent),
              static_cast<unsigned long long>(total.bytes_sent),
              static_cast<unsigned long long>(total.frames_received),
              static_cast<unsigned long long>(total.bytes_received));

  if (trace_path != nullptr) {
    const auto spans = obs::Tracer::Global().Snapshot();
    // Render the first request's tree (its root is the earliest
    // "inference" span).
    const obs::SpanRecord* first_root = nullptr;
    for (const auto& s : spans) {
      if (s.name == "inference" &&
          (first_root == nullptr ||
           s.start_seconds < first_root->start_seconds)) {
        first_root = &s;
      }
    }
    if (first_root != nullptr) {
      std::printf("\ntrace %llx (request %llu):\n",
                  static_cast<unsigned long long>(first_root->trace_id),
                  static_cast<unsigned long long>(first_root->request_id));
      PrintTraceTree(spans, first_root->trace_id);
    }
    std::ofstream out(trace_path);
    obs::Tracer::Global().WriteChromeJson(out);
    std::printf("wrote %zu span(s) to %s\n", spans.size(), trace_path);
  }
  std::printf("\ndp client OK\n");
  return 0;
}
