// Data-provider half of the two-process deployment. Owns the Paillier
// key pair and the input images; connects to a running mp_server, learns
// the weight-free plan view from the handshake, and runs real inferences
// over the versioned wire format:
//
//   ./dp_client 19777 [num_requests]
//
// The private key and the plaintext inputs never leave this process; the
// server only ever sees Paillier ciphertexts (in permuted slot order for
// the values it could otherwise correlate).

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/protocol.h"
#include "net/transport.h"
#include "nn/model_zoo.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ppstream;

int main(int argc, char** argv) {
  const uint16_t port =
      argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 19777;
  const size_t num_requests = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                       : 3;

  std::printf("== PP-Stream data-provider client ==\n\n");

  // The same dataset seed as mp_server, so labels line up.
  DatasetSplit data = MakeZooDataset(ZooModelId::kMnist2,
                                     /*size_scale=*/0.005, /*seed=*/3);

  Rng key_rng(5);
  auto keys = Paillier::GenerateKeyPair(256, key_rng);  // demo-sized keys
  PPS_CHECK_OK(keys.status());

  // Retry the dial so the client may be launched before the server
  // finishes binding (CI starts both concurrently).
  TcpTransportOptions options;
  options.connect_retry.max_retries = 40;
  options.connect_retry.initial_backoff_seconds = 0.25;
  options.connect_retry.backoff_multiplier = 1.0;
  options.connect_retry.max_backoff_seconds = 0.25;
  options.connect_retry.jitter = 0;
  options.connect_retry.deadline_seconds = 20.0;
  auto transport =
      TcpTransport::Connect("127.0.0.1", port, keys->public_key, options);
  PPS_CHECK_OK(transport.status());

  auto view = transport.value()->view_plan();
  PPS_CHECK(view->is_data_provider_view);
  std::printf("connected; handshake delivered a %zu-round weight-free plan\n",
              view->NumRounds());

  DataProvider dp(view, std::move(keys).value(), /*enc_seed=*/7);
  ModelProviderApi& mp = *transport.value()->model_provider();

  size_t correct = 0;
  WallTimer timer;
  TransportStats last = transport.value()->stats();
  for (size_t i = 0; i < num_requests && i < data.test.samples.size(); ++i) {
    auto output = RunProtocolInference(mp, dp, /*request_id=*/i + 1,
                                       data.test.samples[i]);
    PPS_CHECK_OK(output.status());
    const size_t predicted = ArgMax(output.value());
    const TransportStats now = transport.value()->stats();
    std::printf("request %zu: predicted %zu (label %d), %llu B sent / %llu B "
                "received\n",
                i + 1, predicted, data.test.labels[i],
                static_cast<unsigned long long>(now.bytes_sent -
                                                last.bytes_sent),
                static_cast<unsigned long long>(now.bytes_received -
                                                last.bytes_received));
    correct += predicted == static_cast<size_t>(data.test.labels[i]);
    last = now;
  }
  const double elapsed = timer.ElapsedSeconds();

  const TransportStats total = transport.value()->stats();
  std::printf("\n%zu inferences in %.2f s (%.0f%% correct)\n", num_requests,
              elapsed, 100.0 * correct / num_requests);
  std::printf("wire totals: %llu frames / %llu B sent, %llu frames / %llu B "
              "received\n",
              static_cast<unsigned long long>(total.frames_sent),
              static_cast<unsigned long long>(total.bytes_sent),
              static_cast<unsigned long long>(total.frames_received),
              static_cast<unsigned long long>(total.bytes_received));
  std::printf("\ndp client OK\n");
  return 0;
}
