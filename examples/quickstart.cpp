// Quickstart: train a tiny model, compile it into a PP-Stream plan, and
// run one privacy-preserving inference.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface: dataset synthesis, training,
// parameter scaling, plan compilation, key generation, and the two-party
// protocol, and checks the result against plain inference.

#include <cstdio>
#include <memory>

#include "core/plan.h"
#include "core/protocol.h"
#include "core/scaling.h"
#include "crypto/paillier.h"
#include "nn/dataset.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "nn/trainer.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace ppstream;

int main() {
  std::printf("== PP-Stream quickstart ==\n\n");

  // 1. A small binary-classification dataset (20 features).
  DatasetSplit data = MakeTabularDataset("demo", 20, 300, 100,
                                         /*separation=*/4.0, /*seed=*/42);
  std::printf("dataset: %zu train / %zu test samples, %lld features\n",
              data.train.size(), data.test.size(),
              static_cast<long long>(data.train.samples[0].NumElements()));

  // 2. Train a 2-hidden-layer network in the clear (the model provider's
  //    offline step; the paper trains with PyTorch/Matlab).
  Rng rng(7);
  Model model(Shape{20}, "quickstart");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(20, 16, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(16, 2, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));

  TrainConfig train_config;
  train_config.epochs = 30;
  auto stats = TrainModel(&model, data.train, train_config);
  PPS_CHECK_OK(stats.status());
  auto test_acc = EvaluateAccuracy(model, data.test);
  PPS_CHECK_OK(test_acc.status());
  std::printf("trained:  %s\n", model.Summary().c_str());
  std::printf("test accuracy (plain floats): %.2f%%\n\n",
              100 * test_acc.value());

  // 3. Parameter scaling (paper §IV-A): pick F = 10^f.
  auto selection = SelectScalingFactor(model, data.train);
  PPS_CHECK_OK(selection.status());
  std::printf("parameter scaling: f = %d (F = %lld), accuracy %.2f%% -> "
              "%.2f%%\n",
              selection.value().f,
              static_cast<long long>(selection.value().factor),
              100 * selection.value().original_accuracy,
              100 * selection.value().rounded_accuracy);

  // 4. Compile the inference plan (merged linear/non-linear stages).
  auto plan_or = CompilePlan(model, selection.value().factor);
  PPS_CHECK_OK(plan_or.status());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  std::printf("compiled plan: %zu rounds, max integer magnitude %d bits\n",
              plan->NumRounds(), plan->MaxMagnitude().BitLength());

  // 5. Paillier keys (the data provider's). 512-bit keys keep the demo
  //    fast; production deployments use 2048 (paper §V).
  Rng key_rng(99);
  auto keys = Paillier::GenerateKeyPair(512, key_rng);
  PPS_CHECK_OK(keys.status());
  PPS_CHECK_OK(plan->CheckFitsKey(keys.value().public_key.n()));
  std::printf("paillier keys: %d-bit modulus\n\n",
              keys.value().public_key.key_bits());

  // 6. Run the two-party protocol on one test sample.
  ModelProvider mp(plan, keys.value().public_key, /*obf_seed=*/1);
  DataProvider dp(plan, keys.value(), /*enc_seed=*/2);
  const DoubleTensor& sample = data.test.samples[0];
  auto secure_out = RunProtocolInference(mp, dp, /*request_id=*/0, sample);
  PPS_CHECK_OK(secure_out.status());
  auto plain_out = model.Forward(sample);
  PPS_CHECK_OK(plain_out.status());

  std::printf("privacy-preserving inference:\n");
  for (int64_t c = 0; c < secure_out.value().NumElements(); ++c) {
    std::printf("  class %lld: secure=%.6f plain=%.6f\n",
                static_cast<long long>(c), secure_out.value()[c],
                plain_out.value()[c]);
  }
  std::printf("predicted class: %lld (label: %lld)\n",
              static_cast<long long>(ArgMax(secure_out.value())),
              static_cast<long long>(data.test.labels[0]));
  std::printf("\nquickstart OK\n");
  return 0;
}
