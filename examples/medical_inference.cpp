// Scenario: a hospital (data provider) queries a diagnostics vendor's
// proprietary model (model provider) without revealing patient records —
// the paper's healthcare motivation (Breast / Heart / Cardio datasets).
//
// Demonstrates: the Table III healthcare models, mixed-layer decomposition
// (the Heart model uses a ScaledSigmoid), scaling-factor selection, and
// end-to-end accuracy parity between plain and privacy-preserving
// inference over a batch of patients.

#include <cstdio>
#include <memory>

#include "core/protocol.h"
#include "core/scaling.h"
#include "nn/model_zoo.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace ppstream;

int main() {
  std::printf("== Private medical inference (Breast & Heart, Table III) "
              "==\n\n");
  Rng key_rng(2024);
  auto keys = Paillier::GenerateKeyPair(512, key_rng);
  PPS_CHECK_OK(keys.status());

  for (ZooModelId id : {ZooModelId::kBreast, ZooModelId::kHeart}) {
    const ZooInfo& info = GetZooInfo(id);
    std::printf("--- %s (%s) ---\n", info.dataset_name, info.architecture);

    // Paper-sized datasets are small for the healthcare rows; use them.
    DatasetSplit data = MakeZooDataset(id, /*size_scale=*/1.0, /*seed=*/5);
    auto model = MakeTrainedZooModel(id, data.train, /*seed=*/6);
    PPS_CHECK_OK(model.status());

    auto selection = SelectScalingFactor(model.value(), data.train);
    PPS_CHECK_OK(selection.status());
    std::printf("scaling factor: 10^%d\n", selection.value().f);

    auto plan_or = CompilePlan(model.value(), selection.value().factor);
    PPS_CHECK_OK(plan_or.status());
    auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
    PPS_CHECK_OK(plan->CheckFitsKey(keys.value().public_key.n()));
    std::printf("plan: %zu rounds", plan->NumRounds());
    for (size_t r = 0; r < plan->NumRounds(); ++r) {
      std::printf("  [L:%s | N:%s]", plan->linear_stages[r].name.c_str(),
                  plan->nonlinear_segments[r].name.c_str());
    }
    std::printf("\n");

    ModelProvider mp(plan, keys.value().public_key, 11);
    DataProvider dp(plan, keys.value(), 12);

    const size_t patients = 25;  // a batch of test patients
    size_t secure_correct = 0, plain_correct = 0, agree = 0;
    for (size_t i = 0; i < patients; ++i) {
      auto secure = RunProtocolInference(mp, dp, i, data.test.samples[i]);
      PPS_CHECK_OK(secure.status());
      auto plain = model.value().Forward(data.test.samples[i]);
      PPS_CHECK_OK(plain.status());
      const int64_t s = ArgMax(secure.value());
      const int64_t p = ArgMax(plain.value());
      secure_correct += s == data.test.labels[i];
      plain_correct += p == data.test.labels[i];
      agree += s == p;
    }
    std::printf("patients: %zu | plain acc %.1f%% | secure acc %.1f%% | "
                "prediction agreement %.1f%%\n\n",
                patients, 100.0 * plain_correct / patients,
                100.0 * secure_correct / patients, 100.0 * agree / patients);
  }
  std::printf("medical inference example OK\n");
  return 0;
}
