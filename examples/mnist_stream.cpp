// Scenario: a stream of digit images flows through the pipelined engine —
// the paper's distributed-stream-processing core (Figures 3 & 4) with
// offline profiling and load-balanced resource allocation (§IV-C).
//
// Demonstrates: CompilePlan on a conv model, ProfilePlan, the ILP
// allocator, the PpStreamEngine, per-stage metrics, and the throughput
// gain of pipelining versus one-at-a-time execution.

#include <cstdio>
#include <memory>

#include "core/protocol.h"
#include "nn/model_zoo.h"
#include "planner/profiler.h"
#include "stream/engine.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ppstream;

int main() {
  std::printf("== Streaming MNIST inference through the pipeline ==\n\n");

  // MNIST-2 (1Conv+2FC, Table III) on a reduced synthetic MNIST.
  DatasetSplit data = MakeZooDataset(ZooModelId::kMnist2,
                                     /*size_scale=*/0.005, /*seed=*/3);
  auto model = MakeTrainedZooModel(ZooModelId::kMnist2, data.train, 4);
  PPS_CHECK_OK(model.status());
  auto acc = EvaluateAccuracy(model.value(), data.test);
  PPS_CHECK_OK(acc.status());
  std::printf("model: %s (test acc %.1f%%)\n", model.value().Summary().c_str(),
              100 * acc.value());

  auto plan_or = CompilePlan(model.value(), /*scale=*/10000);
  PPS_CHECK_OK(plan_or.status());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());

  Rng key_rng(5);
  auto keys = Paillier::GenerateKeyPair(256, key_rng);  // demo-sized keys
  PPS_CHECK_OK(keys.status());
  PPS_CHECK_OK(plan->CheckFitsKey(keys.value().public_key.n()));

  auto mp = std::make_shared<ModelProvider>(plan, keys.value().public_key, 6);
  auto dp = std::make_shared<DataProvider>(plan, keys.value(), 7);

  // Offline profiling (the paper uses 100 probes; 2 suffice for a demo).
  std::vector<DoubleTensor> probes(data.train.samples.begin(),
                                   data.train.samples.begin() + 2);
  auto profile = ProfilePlan(*mp, *dp, probes);
  PPS_CHECK_OK(profile.status());
  std::printf("\nprofiled pipeline stages:\n");
  for (size_t s = 0; s < profile.value().stage_seconds.size(); ++s) {
    std::printf("  %-34s %8.1f ms  (%s, %llu B out)\n",
                profile.value().stage_names[s].c_str(),
                1e3 * profile.value().stage_seconds[s],
                profile.value().stage_class[s] > 0 ? "model" : "data ",
                static_cast<unsigned long long>(
                    profile.value().stage_bytes_out[s]));
  }

  // Load-balanced allocation for a 2-model-server / 1-data-server split
  // (Table III's MNIST-2 row) with 2 cores each (demo scale).
  AllocationProblem problem =
      BuildAllocationProblem(profile.value(), /*model_servers=*/2,
                             /*data_servers=*/1, /*cores_per_server=*/2);
  auto alloc = IlpAllocator::Solve(problem);
  PPS_CHECK_OK(alloc.status());
  std::printf("\nILP allocation (objective %.4f, %s):\n",
              alloc.value().objective,
              alloc.value().exact ? "exact" : "heuristic");
  for (size_t s = 0; s < profile.value().stage_names.size(); ++s) {
    std::printf("  %-34s server %d, %d threads\n",
                profile.value().stage_names[s].c_str(),
                alloc.value().server_of_layer[s],
                alloc.value().threads_of_layer[s]);
  }

  // Stream a batch of requests through the pipelined engine.
  EngineConfig config;
  config.stage_threads = StageThreadsFromAllocation(alloc.value());
  PpStreamEngine engine(mp, dp, config);
  PPS_CHECK_OK(engine.Start());

  const size_t batch = 4;
  WallTimer timer;
  for (size_t i = 0; i < batch; ++i) {
    PPS_CHECK_OK(engine.Submit(i, data.test.samples[i]));
  }
  size_t correct = 0;
  for (size_t i = 0; i < batch; ++i) {
    auto result = engine.NextResult();
    PPS_CHECK_OK(result.status());
    correct += ArgMax(result.value().output) ==
               data.test.labels[result.value().request_id];
  }
  const double pipelined = timer.ElapsedSeconds();
  engine.Shutdown();

  double serial_estimate = 0;
  for (double t : profile.value().stage_seconds) serial_estimate += t;
  serial_estimate *= static_cast<double>(batch);

  std::printf("\nstreamed %zu requests in %.2f s (%.1f%% correct)\n", batch,
              pipelined, 100.0 * correct / batch);
  std::printf("one-at-a-time estimate: %.2f s  -> pipelining speedup "
              "%.2fx\n",
              serial_estimate, serial_estimate / pipelined);
  std::printf("\nper-stage messages processed:\n");
  for (size_t s = 0; s < engine.pipeline().NumStages(); ++s) {
    const StageMetrics m = engine.pipeline().stage(s).metrics();
    std::printf("  %-16s msgs=%llu busy=%.2fs in=%lluB out=%lluB\n",
                engine.pipeline().stage(s).name().c_str(),
                static_cast<unsigned long long>(m.messages_processed),
                m.busy_seconds,
                static_cast<unsigned long long>(m.bytes_in),
                static_cast<unsigned long long>(m.bytes_out));
  }
  std::printf("\nmnist stream example OK\n");
  return 0;
}
