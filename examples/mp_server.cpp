// Model-provider half of the two-process deployment (README "Two-process
// deployment"). Owns the trained model and serves the protocol's linear
// stages over TCP; pair it with dp_client in another terminal:
//
//   ./mp_server 19777            # serve until SIGTERM (graceful drain)
//   ./mp_server 19777 --once     # serve one connection, then exit (CI)
//   ./mp_server 19777 --once --trace mp_trace.json   # + Chrome trace dump
//   ./mp_server 19777 --admin-port 19778             # + /metrics, /statusz
//   ./mp_server 19777 --flightrec mp_flightrec.json  # failure recorder
//
// With --admin-port, a side HTTP endpoint (obs/admin.h) serves live
// /metrics (Prometheus), /healthz (503 while draining), /statusz
// (non-secret serving state as JSON), and /debug/flightrec:
//
//   curl -s http://127.0.0.1:19778/metrics | head
//   curl -s http://127.0.0.1:19778/statusz
//
// With --flightrec, the flight recorder arms: trigger events (deadline
// sheds, replay refusals, breaker opens, drain) dump the last ~4096
// spans/logs/events to the given path, and a final dump is written after
// drain so post-mortems always have the tail of the timeline.
//
// SIGTERM/SIGINT begin a graceful drain (DESIGN.md §11): no new
// connections, the in-flight connection gets a grace period to finish,
// then Serve() returns and the process exits 0. Parked sessions die with
// the process; reconnecting clients restart their inference from
// scratch, bit-exact.
//
// With --trace, incoming frames' trace blocks root this process's spans
// under the client's trace, so the two dumps merge into one stitched
// timeline in chrome://tracing.
//
// The weights never leave this process: the handshake ships only the
// plan's weight-free data-provider view.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>

#include "net/server.h"
#include "nn/model_zoo.h"
#include "obs/flightrec.h"
#include "obs/trace.h"

using namespace ppstream;

namespace {

ModelProviderTcpServer* g_server = nullptr;

extern "C" void HandleShutdownSignal(int) {
  // BeginDrain is async-signal-safe by contract (net/server.h): atomic
  // stores plus one self-pipe write, no logging, no allocation.
  if (g_server != nullptr) g_server->BeginDrain(/*grace_seconds=*/2.0);
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 19777;
  bool once = false;
  const char* trace_path = nullptr;
  const char* flightrec_path = nullptr;
  int admin_port = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--admin-port") == 0 && i + 1 < argc) {
      admin_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--flightrec") == 0 && i + 1 < argc) {
      flightrec_path = argv[++i];
    } else {
      port = static_cast<uint16_t>(std::atoi(argv[i]));
    }
  }
  if (trace_path != nullptr) obs::Tracer::Global().SetEnabled(true);
  if (flightrec_path != nullptr) {
    obs::FlightRecorder::Global().SetDumpPath(flightrec_path);
    obs::FlightRecorder::Global().SetEnabled(true);
  }

  std::printf("== PP-Stream model-provider server ==\n\n");

  // The same MNIST-2 model as the mnist_stream example; the client builds
  // the matching dataset from the same seed.
  DatasetSplit data = MakeZooDataset(ZooModelId::kMnist2,
                                     /*size_scale=*/0.005, /*seed=*/3);
  auto model = MakeTrainedZooModel(ZooModelId::kMnist2, data.train, 4);
  PPS_CHECK_OK(model.status());
  std::printf("model: %s\n", model.value().Summary().c_str());

  auto plan_or = CompilePlan(model.value(), /*scale=*/10000);
  PPS_CHECK_OK(plan_or.status());
  auto plan = std::make_shared<const InferencePlan>(std::move(plan_or).value());

  ModelProviderServerOptions options;
  options.worker_threads = 2;
  options.admin_port = admin_port;
  ModelProviderTcpServer server(plan, options);
  PPS_CHECK_OK(server.Listen(port));
  g_server = &server;
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  std::printf("listening on 127.0.0.1:%u (%s)\n", server.port(),
              once ? "single connection" : "SIGTERM/ctrl-C drains and stops");
  if (server.admin_port() != 0) {
    std::printf("admin endpoint on http://127.0.0.1:%u (/metrics /healthz "
                "/statusz /debug/flightrec)\n",
                server.admin_port());
  }
  std::fflush(stdout);

  if (once) {
    PPS_CHECK_OK(server.ServeOne(/*accept_timeout_seconds=*/60.0));
  } else {
    PPS_CHECK_OK(server.Serve());
    if (server.stopping()) std::printf("drained on signal\n");
  }
  if (trace_path != nullptr) {
    std::ofstream out(trace_path);
    obs::Tracer::Global().WriteChromeJson(out);
    std::printf("wrote %zu span(s) to %s\n",
                obs::Tracer::Global().Snapshot().size(), trace_path);
  }
  if (flightrec_path != nullptr) {
    // Post-drain dump: the recorder's tail is this process's black box.
    obs::FlightRecorder::Global().TriggerDump("mp_server.exit");
    std::printf("flight recorder dump at %s (%llu dump(s))\n", flightrec_path,
                static_cast<unsigned long long>(
                    obs::FlightRecorder::Global().dumps()));
  }
  std::printf("served %llu connection(s); mp_server OK\n",
              static_cast<unsigned long long>(server.connections_served()));
  return 0;
}
