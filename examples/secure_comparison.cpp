// Scenario: head-to-head of the two secure-inference approaches this repo
// implements — PP-Stream's hybrid PHE+obfuscation protocol versus the
// EzPC-style 2PC baseline (secret sharing + garbled circuits) — on the
// same trained model (a miniature of the paper's Table VII).

#include <cstdio>
#include <memory>

#include "core/protocol.h"
#include "mpc/ezpc.h"
#include "nn/dataset.h"
#include "nn/layers.h"
#include "nn/trainer.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace ppstream;

int main() {
  std::printf("== PP-Stream vs EzPC-style 2PC on one model ==\n\n");

  DatasetSplit data = MakeTabularDataset("cmp", 16, 250, 40, 4.0, 21);
  Rng rng(22);
  Model model(Shape{16}, "cmp");
  PPS_CHECK_OK(model.Add(DenseLayer::Random(16, 12, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<ReluLayer>()));
  PPS_CHECK_OK(model.Add(DenseLayer::Random(12, 2, rng)));
  PPS_CHECK_OK(model.Add(std::make_unique<SoftmaxLayer>()));
  TrainConfig tc;
  tc.epochs = 25;
  PPS_CHECK_OK(TrainModel(&model, data.train, tc).status());

  // --- PP-Stream path.
  auto plan_or = CompilePlan(model, 10000);
  PPS_CHECK_OK(plan_or.status());
  auto plan = std::make_shared<InferencePlan>(std::move(plan_or).value());
  Rng key_rng(23);
  auto keys = Paillier::GenerateKeyPair(512, key_rng);
  PPS_CHECK_OK(keys.status());
  ModelProvider mp(plan, keys.value().public_key, 24);
  DataProvider dp(plan, keys.value(), 25);

  // --- EzPC path.
  auto ezpc = EzPcRunner::Create(model);
  PPS_CHECK_OK(ezpc.status());

  const size_t n = 10;
  size_t agree_pp = 0, agree_ez = 0;
  WallTimer timer;
  for (size_t i = 0; i < n; ++i) {
    auto out = RunProtocolInference(mp, dp, i, data.test.samples[i]);
    PPS_CHECK_OK(out.status());
    auto plain = model.Forward(data.test.samples[i]);
    agree_pp += ArgMax(out.value()) == ArgMax(plain.value());
  }
  const double pp_seconds = timer.ElapsedSeconds();

  MpcMetrics metrics;
  timer.Restart();
  for (size_t i = 0; i < n; ++i) {
    auto out = ezpc.value().Infer(data.test.samples[i], &metrics);
    PPS_CHECK_OK(out.status());
    auto plain = model.Forward(data.test.samples[i]);
    agree_ez += ArgMax(out.value()) == ArgMax(plain.value());
  }
  const double ez_seconds = timer.ElapsedSeconds();

  std::printf("%zu inferences each:\n", n);
  std::printf("  PP-Stream : %6.2f s total (%.3f s/inference), "
              "prediction agreement %zu/%zu\n",
              pp_seconds, pp_seconds / n, agree_pp, n);
  std::printf("  EzPC-2PC  : %6.2f s total (%.3f s/inference), "
              "prediction agreement %zu/%zu\n",
              ez_seconds, ez_seconds / n, agree_ez, n);
  std::printf("\nEzPC cost profile (all %zu inferences):\n", n);
  std::printf("  Beaver triples     : %llu\n",
              static_cast<unsigned long long>(metrics.triples_used));
  std::printf("  garbled AND/XOR    : %llu gates, %.1f MB\n",
              static_cast<unsigned long long>(metrics.gc_gates_garbled),
              metrics.gc_bytes / 1e6);
  std::printf("  oblivious transfers: %llu\n",
              static_cast<unsigned long long>(metrics.ot_transfers));
  std::printf("  protocol rounds    : %llu (transitions: %llu)\n",
              static_cast<unsigned long long>(metrics.rounds),
              static_cast<unsigned long long>(metrics.protocol_transitions));
  std::printf("\nPP-Stream needs %zu interaction rounds per inference and "
              "no per-layer protocol switching;\nEzPC pays a share<->GC "
              "transition at every ReLU — the effect behind paper Table "
              "VII.\n",
              plan->NumRounds());
  std::printf("\nsecure comparison example OK\n");
  return 0;
}
